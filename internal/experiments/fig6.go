package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
)

// fig6 renders the paper's conceptual model chart — the unified view of the
// three contention regions — from an actually constructed model: one
// predicted speed curve per region representative, plus the parameter
// anchor points (TBWDC onset, contention balance point, minor flat line).
func init() {
	register(Experiment{ID: "fig6", Title: "The three-region interference classification model (rendered from the constructed Xavier CPU model)", Run: runFig6})
}

func runFig6(ctx *Context) error {
	m, err := ctx.Models.Get("virtual-xavier", "CPU")
	if err != nil {
		return err
	}
	fmt.Fprintf(ctx.Out, "%s\n\n", m)
	fmt.Fprintf(ctx.Out, "region boundaries: minor ≤ %.1f GB/s < normal ≤ %.1f GB/s < intensive\n",
		m.NormalBW, m.IntensiveBW)
	fmt.Fprintf(ctx.Out, "drop onset: x+y = TBWDC = %.1f GB/s   flat tail: y ≥ CBP = %.1f GB/s\n\n",
		m.TBWDC, m.CBP)

	// One representative kernel per region; the DLA-style missing minor
	// region shows up as an absent top curve when NormalBW is 0.
	reps := []struct {
		label string
		x     float64
	}{
		{"minor", m.NormalBW / 2},
		{"normal", (m.NormalBW + m.IntensiveBW) / 2},
		{"intensive", m.IntensiveBW + (m.PeakBW-m.IntensiveBW)/3},
	}
	var xs []float64
	for y := 0.0; y <= m.PeakBW*1.001; y += m.PeakBW / 20 {
		xs = append(xs, y)
	}
	lines := map[string][]float64{}
	for _, r := range reps {
		if r.x <= 0 {
			continue // no minor region (the DLA shape)
		}
		var ys []float64
		for _, y := range xs {
			ys = append(ys, m.Predict(r.x, y))
		}
		lines[fmt.Sprintf("%s x=%.0f", r.label, r.x)] = ys
	}
	if err := report.SeriesChart(ctx.Out,
		"Fig 6 — predicted achieved relative speed per contention region",
		"ext GB/s", xs, lines); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
