package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// testRC keeps experiment tests fast; warm-up still spans several scheduler
// quanta so steady-state behaviour is measured.
func testRC() soc.RunConfig {
	return soc.RunConfig{WarmupCycles: 120_000, MeasureCycles: 120_000}
}

func testContext(t *testing.T) (*Context, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	ctx, err := NewContext(&buf, "../../models/pccs-models.json", testRC())
	if err != nil {
		t.Fatalf("context: %v", err)
	}
	return ctx, &buf
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2", "fig3", "fig5", "fig6", "table3", "table5", "table7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"table9", "fig15", "sourceobl", "summary", "usecase-cores", "ext-multimc", "ext-dnnphases", "ext-sched", "ext-backends",
		"ablation-piecewise", "ablation-extraction", "ablation-calibrators", "ablation-policies", "ablation-refresh",
	}
	for _, id := range want {
		if _, err := Get(id); err != nil {
			t.Errorf("experiment %q not registered: %v", id, err)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	if _, err := Get("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %q before %q", all[i-1].ID, all[i].ID)
		}
	}
}

func TestContextPlatforms(t *testing.T) {
	ctx, _ := testContext(t)
	if ctx.Xavier() == nil || ctx.Snapdragon() == nil {
		t.Fatal("platforms missing")
	}
	if _, err := ctx.Platform("virtual-xavier"); err != nil {
		t.Error(err)
	}
	if _, err := ctx.Platform("amiga"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestContextWithoutModels(t *testing.T) {
	ctx, err := NewContext(&bytes.Buffer{}, "", testRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Models) != 0 {
		t.Error("empty model path should give empty set")
	}
	if _, err := NewContext(&bytes.Buffer{}, "/nonexistent/models.json", testRC()); err == nil {
		t.Error("bad model path accepted")
	}
}

func TestStandaloneCacheHit(t *testing.T) {
	ctx, _ := testContext(t)
	p := ctx.Xavier()
	k := soc.Kernel{Name: "c", DemandGBps: 30}
	a, err := ctx.StandaloneAchieved(p, 1, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.StandaloneAchieved(p, 1, k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cache miss changed result: %v vs %v", a, b)
	}
	if got := ctx.Exec.Cache.Len(); got != 1 {
		t.Errorf("cache has %d entries, want 1", got)
	}
}

func TestPressureLadder(t *testing.T) {
	ctx, _ := testContext(t)
	l := PressureLadder(ctx.Xavier())
	if len(l) != 10 {
		t.Fatalf("ladder size %d", len(l))
	}
	peak := ctx.Xavier().PeakGBps()
	if l[9] != peak || l[0] != peak/10 {
		t.Errorf("ladder ends %v..%v, want %v..%v", l[0], l[9], peak/10, peak)
	}
}

// Smoke-run the cheap experiments end to end; the expensive sweeps are
// exercised by the benchmark harness.
func TestRunTable7(t *testing.T) {
	ctx, buf := testContext(t)
	e, _ := Get("table7")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Normal BW", "Xavier DLA", "RateN"} {
		if !strings.Contains(out, want) {
			t.Errorf("table7 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig12(t *testing.T) {
	ctx, buf := testContext(t)
	e, _ := Get("fig12")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vgg19") || !strings.Contains(out, "resnet50") {
		t.Errorf("fig12 output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "average |error|") {
		t.Errorf("fig12 missing error summary:\n%s", out)
	}
}

func TestRunSourceObliviousness(t *testing.T) {
	ctx, buf := testContext(t)
	e, _ := Get("sourceobl")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max spread") {
		t.Errorf("sourceobl output incomplete:\n%s", buf.String())
	}
}

func TestRunExtSched(t *testing.T) {
	ctx, buf := testContext(t)
	e, _ := Get("ext-sched")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serial", "random", "pccs-makespan", "replayed"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-sched output missing %q:\n%s", want, out)
		}
	}
}

func TestValidationFigureErrorsOnMissingModel(t *testing.T) {
	ctx, err := NewContext(&bytes.Buffer{}, "", testRC())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := Get("fig8")
	if err := e.Run(ctx); err == nil {
		t.Error("fig8 without models should fail")
	}
}
