package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/report"
)

// usecase-cores demonstrates the second §3.4 design knob: choosing the
// number of GPU cores (SMs). Under contention, cores beyond what the
// contended memory system can feed are wasted area; PCCS picks a smaller
// configuration at (predictively) equal delivered performance, while Gables
// — blind to contention below the peak — provisions to the standalone
// crossover. This regenerates the paper's "saving up to 50% area (with
// reduced cores) over the configurations suggested by prior models" claim.
func init() {
	register(Experiment{ID: "usecase-cores", Title: "Core-count selection under contention: PCCS vs Gables area", Run: runUsecaseCores})
}

func runUsecaseCores(ctx *Context) error {
	p := ctx.Xavier()
	model, err := ctx.Models.Get(p.Name, "GPU")
	if err != nil {
		return err
	}
	gb, err := gables.New(p.PeakGBps())
	if err != nil {
		return err
	}
	cm := explore.CoreModel{Kernel: "streamcluster", MemBoundGBps: 88, CrossoverCores: 320, MaxCores: 512}

	tbl := report.NewTable("GPU core-count selection for streamcluster (target: ≥95% of best co-run perf)",
		"ext GB/s", "PCCS cores", "PCCS perf", "Gables cores", "Gables perf", "area saved %")
	for _, ext := range []float64{20, 40, 60, 80} {
		pSel, err := explore.SelectCores(model, cm, ext, 0.95, 32)
		if err != nil {
			return err
		}
		gSel, err := explore.SelectCores(gb, cm, ext, 0.95, 32)
		if err != nil {
			return err
		}
		tbl.Add(report.F(ext),
			fmt.Sprint(pSel.Cores), report.F2(pSel.CorunPerf),
			fmt.Sprint(gSel.Cores), report.F2(gSel.CorunPerf),
			report.F(explore.AreaSaving(pSel.Cores, gSel.Cores)))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
