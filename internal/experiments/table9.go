package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// The §4.3 case study: pick the PU clock for streamcluster under co-run
// slowdown budgets of 5% and 20%. Ground truth comes from simulator probes;
// PCCS and Gables pick from their predictions. The paper's result: PCCS
// lands 1.3–3.6% off the true frequency while Gables over-clocks by up to
// 49% (Table 9), wasting power without delivering the promised co-run
// performance (Fig. 15).
//
// The study runs on the virtual CPU rather than the GPU: the paper's
// over-provisioning regime needs a contention onset below the DRAM peak,
// which on this substrate the CPU exhibits (TBWDC ≈ 91% of peak) while the
// massively latency-tolerant GPU does not (see DESIGN.md).
func init() {
	register(Experiment{ID: "table9", Title: "GPU frequency selection for streamcluster under slowdown budgets", Run: runTable9})
	register(Experiment{ID: "fig15", Title: "Co-run relative speed curves at fixed GPU frequencies (truth vs models)", Run: runFig15})
}

// streamclusterFreqModel derives the case-study kernel's frequency model
// from its registered Xavier GPU profile.
func streamclusterFreqModel(ctx *Context) (explore.FreqModel, error) {
	fm := explore.StreamclusterXavierCPU()
	return fm, fm.Validate()
}

func runTable9(ctx *Context) error {
	p := ctx.Xavier()
	target, pressure := p.PUIndex("CPU"), p.PUIndex("GPU")
	model, err := ctx.Models.Get(p.Name, "CPU")
	if err != nil {
		return err
	}
	gb, err := gables.New(p.PeakGBps())
	if err != nil {
		return err
	}
	fm, err := streamclusterFreqModel(ctx)
	if err != nil {
		return err
	}
	ladder := explore.Ladder(500, fm.MaxMHz, 15)

	// 60/80/100 GB/s of external demand brackets the CPU's contention
	// onset: at 80 the kernel already suffers while total demand is still
	// below the DRAM peak — exactly where Gables sees no contention and
	// over-clocks (the paper's Table 9 scenario). The heaviest point also
	// exposes Gables' second failure mode: beyond the peak its
	// proportional-sharing assumption under-provisions (the fairness tail
	// keeps the true speed higher than proportional division predicts).
	tbl := report.NewTable("Table 9 — selected CPU frequencies (MHz) and selection errors (%)",
		"budget", "ext GB/s", "truth", "PCCS", "PCCS err%", "Gables", "Gables err%", "PCCS rel power", "Gables rel power")
	for _, budget := range []float64{5, 20} {
		for _, ext := range []float64{60, 80, 100} {
			truthFn := func(demand float64) (float64, error) {
				k := soc.Kernel{Name: "streamcluster", DemandGBps: demand, RunLines: 256}
				return ctx.ActualRS(p, target, k, pressure, ext)
			}
			truth, err := explore.SelectFrequencyTruth(truthFn, fm, budget, ladder)
			if err != nil {
				return err
			}
			pccsSel, err := explore.SelectFrequency(model, fm, ext, budget, ladder)
			if err != nil {
				return err
			}
			gablesSel, err := explore.SelectFrequency(gb, fm, ext, budget, ladder)
			if err != nil {
				return err
			}
			tbl.Add(
				fmt.Sprintf("%.0f%%", budget),
				report.F(ext),
				report.F(truth.FreqMHz),
				report.F(pccsSel.FreqMHz),
				report.F(explore.FreqError(pccsSel.FreqMHz, truth.FreqMHz)),
				report.F(gablesSel.FreqMHz),
				report.F(explore.FreqError(gablesSel.FreqMHz, truth.FreqMHz)),
				report.F2(explore.RelPower(pccsSel.FreqMHz, fm.MaxMHz)),
				report.F2(explore.RelPower(gablesSel.FreqMHz, fm.MaxMHz)),
			)
		}
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

func runFig15(ctx *Context) error {
	p := ctx.Xavier()
	target, pressure := p.PUIndex("CPU"), p.PUIndex("GPU")
	model, err := ctx.Models.Get(p.Name, "CPU")
	if err != nil {
		return err
	}
	gb, err := gables.New(p.PeakGBps())
	if err != nil {
		return err
	}
	fm, err := streamclusterFreqModel(ctx)
	if err != nil {
		return err
	}
	exts := []float64{20, 40, 60, 70, 80, 90, 100, 120}
	for _, freq := range []float64{fm.MaxMHz, 1000} {
		demand := fm.DemandAt(freq)
		lines := map[string][]float64{"actual": nil, "PCCS": nil, "Gables": nil}
		for _, ext := range exts {
			k := soc.Kernel{Name: "streamcluster", DemandGBps: demand, RunLines: 256}
			actual, err := ctx.ActualRS(p, target, k, pressure, ext)
			if err != nil {
				return err
			}
			lines["actual"] = append(lines["actual"], actual)
			lines["PCCS"] = append(lines["PCCS"], model.Predict(demand, ext))
			lines["Gables"] = append(lines["Gables"], gb.Predict(demand, ext))
		}
		if err := report.SeriesChart(ctx.Out,
			fmt.Sprintf("Fig 15 — streamcluster co-run RS%% at CPU %.0f MHz (demand %.1f GB/s)", freq, demand),
			"ext GB/s", exts, lines); err != nil {
			return err
		}
		fmt.Fprintln(ctx.Out)
	}
	return nil
}
