package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// corunResult is one (workload, PU) cell of the Fig. 14 study.
type corunResult struct {
	Workload string
	PU       string
	Actual   float64
	PCCS     float64
	Gables   float64
}

// runTable8Corun measures the eleven Table-8 co-runs on the virtual Xavier
// and predicts each PU's relative speed with PCCS and Gables. fig14 and the
// summary experiment share it.
func runTable8Corun(ctx *Context) ([]corunResult, error) {
	p := ctx.Xavier()
	gb, err := gables.New(p.PeakGBps())
	if err != nil {
		return nil, err
	}
	puNames := []string{"CPU", "GPU", "DLA"}
	models := map[string]interface{ Predict(x, y float64) float64 }{}
	for _, pu := range puNames {
		m, err := ctx.Models.Get(p.Name, pu)
		if err != nil {
			return nil, err
		}
		models[pu] = m
	}

	var out []corunResult
	for _, row := range workload.Table8() {
		pl := soc.Placement{}
		demand := map[string]float64{}
		for _, pu := range puNames {
			w, err := row.On(pu)
			if err != nil {
				return nil, err
			}
			k, err := w.Kernel(p.Name, pu)
			if err != nil {
				return nil, err
			}
			pl[p.PUIndex(pu)] = k
			demand[pu] = k.DemandGBps
		}
		actual, err := ctx.CorunRS(p, pl)
		if err != nil {
			return nil, err
		}
		for _, pu := range puNames {
			x := demand[pu]
			y := 0.0
			for _, other := range puNames {
				if other != pu {
					y += demand[other]
				}
			}
			out = append(out, corunResult{
				Workload: row.ID,
				PU:       pu,
				Actual:   actual[p.PUIndex(pu)],
				PCCS:     models[pu].Predict(x, y),
				Gables:   gb.Predict(x, y),
			})
		}
	}
	return out, nil
}

// corunErrors aggregates mean |error| per PU per model.
func corunErrors(results []corunResult) map[string]map[string]float64 {
	acc := map[string]map[string][]float64{}
	for _, r := range results {
		if acc[r.PU] == nil {
			acc[r.PU] = map[string][]float64{}
		}
		acc[r.PU]["PCCS"] = append(acc[r.PU]["PCCS"], stats.AbsErr(r.PCCS, r.Actual))
		acc[r.PU]["Gables"] = append(acc[r.PU]["Gables"], stats.AbsErr(r.Gables, r.Actual))
	}
	out := map[string]map[string]float64{}
	for pu, byModel := range acc {
		out[pu] = map[string]float64{}
		for model, errs := range byModel {
			out[pu][model] = stats.Mean(errs)
		}
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Predicted and actual achieved relative speed of 11 co-run workloads (Table 8) on CPU, GPU, DLA",
		Run: func(ctx *Context) error {
			results, err := runTable8Corun(ctx)
			if err != nil {
				return err
			}
			for _, pu := range []string{"CPU", "GPU", "DLA"} {
				tbl := report.NewTable("workloads A–K on Xavier "+pu,
					"workload", "actual RS%", "PCCS RS%", "PCCS err", "Gables RS%", "Gables err")
				for _, r := range results {
					if r.PU != pu {
						continue
					}
					tbl.Add(r.Workload, report.F(r.Actual),
						report.F(r.PCCS), report.F(stats.AbsErr(r.PCCS, r.Actual)),
						report.F(r.Gables), report.F(stats.AbsErr(r.Gables, r.Actual)))
				}
				if _, err := tbl.WriteTo(ctx.Out); err != nil {
					return err
				}
			}
			errs := corunErrors(results)
			for _, pu := range []string{"CPU", "GPU", "DLA"} {
				fmt.Fprintf(ctx.Out, "%s: PCCS mean |err| %.1f%%, Gables %.1f%%\n",
					pu, errs[pu]["PCCS"], errs[pu]["Gables"])
			}
			fmt.Fprintln(ctx.Out)
			return nil
		},
	})

	register(Experiment{
		ID:    "summary",
		Title: "Headline accuracy summary (abstract): PCCS vs Gables per PU",
		Run: func(ctx *Context) error {
			results, err := runTable8Corun(ctx)
			if err != nil {
				return err
			}
			errs := corunErrors(results)
			tbl := report.NewTable(
				"co-run prediction error (mean |RS error|, %) — paper: GPU 30.3→8.7, CPU 13.4→3.7, DLA 20.6→5.6",
				"PU", "Gables", "PCCS", "improvement")
			for _, pu := range []string{"GPU", "CPU", "DLA"} {
				g, p := errs[pu]["Gables"], errs[pu]["PCCS"]
				imp := "-"
				if p > 0 {
					imp = fmt.Sprintf("%.1fx", g/p)
				}
				tbl.Add(pu, report.F(g), report.F(p), imp)
			}
			_, err = tbl.WriteTo(ctx.Out)
			return err
		},
	})
}
