package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// ext-backends validates PCCS across the extended platform families. For
// each backend it constructs a quick model for the busiest accelerator PU,
// then checks predicted against measured relative speed with the pressure
// generated on a *different* PU than calibration used — the setting where
// source-obliviousness (§3.2) must hold for the model to transfer.
//
// The documented finding: on the PIM backend a pressure PU that offloads a
// fraction f of its demand in-memory presents a nominal external demand y
// of which only (1-f)·y reaches the memory controller. PCCS, which sees
// only y, systematically overpredicts the slowdown (predicted RS below
// measured RS, a negative bias below) — in-memory service breaks the
// source-obliviousness assumption the model is built on.
func init() {
	register(Experiment{ID: "ext-backends", Title: "Extended backends: per-family validation error and the PIM source-obliviousness break", Run: runExtBackends})
}

// defaultExtBackends is the sweep when the CLI does not restrict it: the
// reference platform first, then one representative of each new family.
var defaultExtBackends = []string{"virtual-xavier", "chiplet-dual", "virtual-npu", "pim-xavier"}

// backendSweep is a reduced construction grid (6 calibrators x 6 external
// demands, 15%..90% of peak) — coarse enough to keep four platforms cheap,
// fine enough for the three-region extraction to find its knees.
func backendSweep(b soc.Backend, target, pressure int, rc soc.RunConfig) calib.SweepConfig {
	peak := b.PeakGBps()
	arch := b.PUList()[target]
	var cals []traffic.Spec
	var ext []float64
	for i := 1; i <= 6; i++ {
		d := peak * 0.15 * float64(i)
		cals = append(cals, traffic.Spec{
			Name:        fmt.Sprintf("cal-%03.0f", d),
			DemandGBps:  d,
			Outstanding: arch.Outstanding,
			RunLines:    arch.RunLines,
			Streams:     arch.Streams,
		})
		ext = append(ext, d)
	}
	return calib.SweepConfig{TargetPU: target, PressurePU: pressure, Calibrators: cals, ExtGBps: ext, Run: rc}
}

// validationPressurePU picks the pressure source for the validation runs:
// the highest-index PU that took part in neither the target role nor the
// calibration sweep, falling back to the calibration PU on two-PU SoCs.
func validationPressurePU(b soc.Backend, target, calPressure int) int {
	for i := len(b.PUList()) - 1; i >= 0; i-- {
		if i != target && i != calPressure {
			return i
		}
	}
	return calPressure
}

type backendReport struct {
	name, family string
	calPU, valPU string
	errs         []float64 // |predicted - measured| RS percent
	bias         []float64 // signed predicted - measured
}

func runExtBackends(ctx *Context) error {
	names := ctx.Backends
	if len(names) == 0 {
		names = defaultExtBackends
	}
	const target = 1 // the GPU / first NPU core on every registered family
	var reports []backendReport
	for _, name := range names {
		b, err := ctx.Backend(name)
		if err != nil {
			return err
		}
		pus := b.PUList()
		calPU, err := calib.PressurePUFor(b, target)
		if err != nil {
			return err
		}
		m, err := calib.SweepContext(ctx.Sim, ctx.Exec, b, backendSweep(b, target, calPU, ctx.Run))
		if err != nil {
			return fmt.Errorf("%s: sweep: %w", name, err)
		}
		params, err := calib.Extract(m, calib.DefaultOptions())
		if err != nil {
			return fmt.Errorf("%s: extract: %w", name, err)
		}
		params.Backend = soc.BackendFamilyOf(b)

		valPU := validationPressurePU(b, target, calPU)
		peak := b.PeakGBps()
		rep := backendReport{
			name: name, family: params.Backend,
			calPU: pus[calPU].Name, valPU: pus[valPU].Name,
		}
		tbl := report.NewTable(
			fmt.Sprintf("%s (%s): %s predicted vs measured RS, pressure on %s (calibrated against %s)",
				name, rep.family, pus[target].Name, rep.valPU, rep.calPU),
			"demand GB/s", "ext GB/s", "observed ext", "predicted RS%", "measured RS%", "|err|")
		for _, xf := range []float64{0.25, 0.45, 0.65} {
			x := peak * xf
			k := soc.Kernel{Name: fmt.Sprintf("val-%03.0f", x), DemandGBps: x}
			for _, yf := range []float64{0.3, 0.6} {
				y := peak * yf
				// A deployed scheduler feeds the model the pressure PU's
				// observed solo bandwidth, not its nominal demand — the
				// DLA-class PUs cannot issue the full nominal rate, and on
				// PIM the observation includes in-memory traffic the MC
				// never sees.
				yObs, err := ctx.StandaloneAchieved(b, valPU, soc.ExternalPressure(y))
				if err != nil {
					return fmt.Errorf("%s: pressure probe: %w", name, err)
				}
				pred := params.Predict(x, yObs)
				meas, err := ctx.ActualRS(b, target, k, valPU, y)
				if err != nil {
					return fmt.Errorf("%s: validate: %w", name, err)
				}
				rep.errs = append(rep.errs, stats.AbsErr(pred, meas))
				rep.bias = append(rep.bias, pred-meas)
				tbl.Add(report.F(x), report.F(y), report.F(yObs), report.F(pred), report.F(meas), report.F(stats.AbsErr(pred, meas)))
			}
		}
		if _, err := tbl.WriteTo(ctx.Out); err != nil {
			return err
		}
		reports = append(reports, rep)
	}

	sum := report.NewTable("Per-backend validation error (cross-source pressure)",
		"platform", "family", "cal/val pressure", "mean |err|%", "max |err|%", "bias%")
	var ref, pim *backendReport
	for i := range reports {
		r := &reports[i]
		sum.Add(r.name, r.family, r.calPU+"/"+r.valPU,
			report.F(stats.Mean(r.errs)), report.F(stats.Max(r.errs)), report.F(stats.Mean(r.bias)))
		switch r.family {
		case "virtual-soc":
			if ref == nil {
				ref = r
			}
		case "pim":
			pim = r
		}
	}
	if _, err := sum.WriteTo(ctx.Out); err != nil {
		return err
	}
	if pim != nil {
		line := fmt.Sprintf("finding: PIM breaks source-obliviousness — %s pressure presents nominal demand the MC never sees, and PCCS overpredicts slowdown (bias %+.1f%%, mean |err| %.1f%%",
			pim.valPU, stats.Mean(pim.bias), stats.Mean(pim.errs))
		if ref != nil {
			line += fmt.Sprintf(" vs %.1f%% on %s", stats.Mean(ref.errs), ref.name)
		}
		fmt.Fprintf(ctx.Out, "%s)\n\n", line)
	}
	return nil
}
