package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// fig2 reproduces the motivating measurement: the percentage of the
// requested memory bandwidth that is met on each Xavier PU as external
// pressure rises. The paper's key observation — contention effects appear
// even while requested BW + external BW is below the DRAM peak — is checked
// explicitly.
func init() {
	register(Experiment{ID: "fig2", Title: "Percentage of requested BW met under external memory pressure", Run: runFig2})
}

func runFig2(ctx *Context) error {
	p := ctx.Xavier()
	peak := p.PeakGBps()
	// The paper's requested bandwidths: 30 GB/s on the DLA, 93 on the CPU,
	// 127 on the GPU (≈ each PU's heavy streaming demand).
	cases := []struct {
		pu       string
		pressure string
		demand   float64
	}{
		{"DLA", "CPU", 30},
		{"CPU", "GPU", 93},
		{"GPU", "CPU", 127},
	}
	ladder := PressureLadder(p)

	lines := map[string][]float64{}
	var contentionBeforePeak bool
	for _, cse := range cases {
		target, pressure := p.PUIndex(cse.pu), p.PUIndex(cse.pressure)
		k := soc.Kernel{Name: "fig2-" + cse.pu, DemandGBps: cse.demand}
		alone, err := ctx.StandaloneAchieved(p, target, k)
		if err != nil {
			return err
		}
		pls := make([]soc.Placement, len(ladder))
		for i, ext := range ladder {
			pls[i] = soc.Placement{target: k, pressure: soc.ExternalPressure(ext)}
		}
		outs, err := ctx.RunBatch(p, pls)
		if err != nil {
			return err
		}
		var ys []float64
		for i, ext := range ladder {
			met := 100 * outs[i].Results[target].AchievedGBps / cse.demand
			if met > 100 {
				met = 100
			}
			ys = append(ys, met)
			if met < 95 && alone/cse.demand > 0.95 && cse.demand+ext < peak {
				contentionBeforePeak = true
			}
		}
		lines[fmt.Sprintf("%s(req %.0f)", cse.pu, cse.demand)] = ys
	}
	if err := report.SeriesChart(ctx.Out,
		fmt.Sprintf("%% of requested BW met on Xavier (peak %.1f GB/s)", peak),
		"ext GB/s", ladder, lines); err != nil {
		return err
	}
	if contentionBeforePeak {
		fmt.Fprintln(ctx.Out, "observation confirmed: contention appears before requested+external reaches DRAM peak")
	} else {
		fmt.Fprintln(ctx.Out, "WARNING: no contention observed below the DRAM peak (contradicts paper Fig. 2)")
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
