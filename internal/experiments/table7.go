package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
)

// table7 prints the constructed model parameters for every PU of both
// platforms — the reproduction of the paper's Table 7, including its
// qualitative signatures: the DLA's missing minor region and the
// Snapdragon's compressed bandwidth scale with steeper per-GB/s rates.
func init() {
	register(Experiment{ID: "table7", Title: "Constructed PCCS model parameters per platform PU", Run: runTable7})
}

func runTable7(ctx *Context) error {
	cols := []struct{ platform, pu string }{
		{"virtual-xavier", "CPU"},
		{"virtual-xavier", "GPU"},
		{"virtual-xavier", "DLA"},
		{"virtual-snapdragon", "CPU"},
		{"virtual-snapdragon", "GPU"},
	}
	tbl := report.NewTable("Table 7 — model parameters",
		"parameter", "Xavier CPU", "Xavier GPU", "Xavier DLA", "Snapdragon CPU", "Snapdragon GPU")
	rows := []struct {
		name string
		get  func(platform, pu string) (string, error)
	}{
		{"Normal BW (GB/s)", ctx.paramCell(func(v paramView) string { return report.F(v.NormalBW) })},
		{"Intensive BW (GB/s)", ctx.paramCell(func(v paramView) string { return report.F(v.IntensiveBW) })},
		{"MRMC (%)", ctx.paramCell(func(v paramView) string {
			if v.NormalBW == 0 {
				return "NA"
			}
			return report.F(v.MRMC)
		})},
		{"CBP (GB/s)", ctx.paramCell(func(v paramView) string { return report.F(v.CBP) })},
		{"TBWDC (GB/s)", ctx.paramCell(func(v paramView) string { return report.F(v.TBWDC) })},
		{"RateN (%/GBps)", ctx.paramCell(func(v paramView) string { return report.F2(v.RateN) })},
		{"RateI@IntensiveBW (%/GBps)", ctx.paramCell(func(v paramView) string { return report.F2(v.RateI) })},
	}
	for _, r := range rows {
		cells := []string{r.name}
		for _, c := range cols {
			cell, err := r.get(c.platform, c.pu)
			if err != nil {
				return err
			}
			cells = append(cells, cell)
		}
		tbl.Add(cells...)
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

// paramView flattens a model for table rendering.
type paramView struct {
	NormalBW, IntensiveBW, MRMC, CBP, TBWDC, RateN, RateI float64
}

func (c *Context) paramCell(f func(paramView) string) func(platform, pu string) (string, error) {
	return func(platform, pu string) (string, error) {
		m, err := c.Models.Get(platform, pu)
		if err != nil {
			return "", err
		}
		return f(paramView{
			NormalBW:    m.NormalBW,
			IntensiveBW: m.IntensiveBW,
			MRMC:        m.MRMC,
			CBP:         m.CBP,
			TBWDC:       m.TBWDC,
			RateN:       m.RateN,
			RateI:       m.RateI(m.IntensiveBW),
		}), nil
	}
}
