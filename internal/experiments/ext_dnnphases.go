package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// ext-dnnphases applies the multi-phase methodology (§3.2) to DLA
// inference: networks are split into coarse layer groups (convolutions vs
// weight-streaming fully-connected layers) and predicted phase-by-phase,
// mirroring the cfd study of Fig. 13 on the DNN workloads.
func init() {
	register(Experiment{ID: "ext-dnnphases", Title: "Layer-wise DLA prediction: flat average demand vs per-layer phases", Run: runExtDNNPhases})
}

func runExtDNNPhases(ctx *Context) error {
	const platformName, puName, pressureName = "virtual-xavier", "DLA", "CPU"
	p, err := ctx.Platform(platformName)
	if err != nil {
		return err
	}
	target, pressure := p.PUIndex(puName), p.PUIndex(pressureName)
	model, err := ctx.Models.Get(platformName, puName)
	if err != nil {
		return err
	}

	flatErr := stats.NewErrorTracker("flat")
	phaseErr := stats.NewErrorTracker("phase-wise")
	for _, name := range []string{"vgg19", "resnet50", "alexnet"} {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		avg, err := w.DemandOn(platformName, puName)
		if err != nil {
			return err
		}
		raw, err := workload.DNNPhases(name, platformName, puName)
		if err != nil {
			return err
		}
		var phases []core.Phase
		for _, ph := range raw {
			phases = append(phases, core.Phase{
				Name: ph.Name, Weight: ph.Weight,
				DemandGBps: ph.Demand[platformName+"/"+puName],
			})
		}

		tbl := report.NewTable(
			fmt.Sprintf("%s on the DLA: layer-wise ground truth vs flat vs phase-wise prediction", name),
			"ext GB/s", "actual RS%", "flat RS%", "phase-wise RS%")
		for _, ext := range []float64{27, 55, 82, 110} {
			// Ground truth: run each layer group as its own kernel and
			// aggregate by standalone time share.
			dilation := 0.0
			for _, ph := range phases {
				k := soc.Kernel{Name: name + "-" + ph.Name, DemandGBps: ph.DemandGBps, RunLines: w.RunLines}
				rs, err := ctx.ActualRS(p, target, k, pressure, ext)
				if err != nil {
					return err
				}
				dilation += ph.Weight * (100 / rs)
			}
			actual := 100 / dilation

			flat := model.Predict(avg, ext)
			phased, err := model.PredictPhases(phases, ext)
			if err != nil {
				return err
			}
			flatErr.Add(flat, actual)
			phaseErr.Add(phased, actual)
			tbl.Add(report.F(ext), report.F(actual), report.F(flat), report.F(phased))
		}
		if _, err := tbl.WriteTo(ctx.Out); err != nil {
			return err
		}
	}
	fmt.Fprintf(ctx.Out, "DNN prediction |error|: flat %.1f%%, phase-wise %.1f%%\n\n",
		flatErr.MeanAbs(), phaseErr.MeanAbs())
	return nil
}
