package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/stats"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// validationFigure reproduces the Figs. 8–12 harness: for each benchmark on
// the target PU, sweep external pressure over the platform ladder and
// report the actual achieved relative speed next to the PCCS and Gables
// predictions, then the per-model average errors.
func validationFigure(ctx *Context, platformName, puName, pressurePU string, names []string) error {
	p, err := ctx.Platform(platformName)
	if err != nil {
		return err
	}
	target := p.PUIndex(puName)
	pressure := p.PUIndex(pressurePU)
	if target < 0 || pressure < 0 {
		return fmt.Errorf("experiments: platform %s lacks PU %s or %s", platformName, puName, pressurePU)
	}
	model, err := ctx.Models.Get(platformName, puName)
	if err != nil {
		return err
	}
	gb, err := gables.New(p.PeakGBps())
	if err != nil {
		return err
	}

	ladder := PressureLadder(p)
	pccsErr := stats.NewErrorTracker("PCCS")
	gablesErr := stats.NewErrorTracker("Gables")

	for _, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			return err
		}
		k, err := w.Kernel(platformName, puName)
		if err != nil {
			return err
		}
		tbl := report.NewTable(
			fmt.Sprintf("%s on %s %s (x = %.1f GB/s, %s, region %v)",
				name, platformName, puName, k.DemandGBps, w.Class, model.Region(k.DemandGBps)),
			"ext GB/s", "actual RS%", "PCCS RS%", "Gables RS%")
		// The whole pressure ladder fans out over the executor pool; rows
		// come back in ladder order so the table is identical to a serial
		// sweep.
		actuals, err := ctx.ActualRSLadder(p, target, k, pressure, ladder)
		if err != nil {
			return err
		}
		for i, ext := range ladder {
			actual := actuals[i]
			pp := model.Predict(k.DemandGBps, ext)
			gp := gb.Predict(k.DemandGBps, ext)
			pccsErr.Add(pp, actual)
			gablesErr.Add(gp, actual)
			tbl.Add(report.F(ext), report.F(actual), report.F(pp), report.F(gp))
		}
		if _, err := tbl.WriteTo(ctx.Out); err != nil {
			return err
		}
	}
	fmt.Fprintf(ctx.Out, "average |error| on %s %s: PCCS %.1f%%, Gables %.1f%% (%d points)\n\n",
		platformName, puName, pccsErr.MeanAbs(), gablesErr.MeanAbs(), pccsErr.Count())
	if pccsErr.MeanAbs() >= gablesErr.MeanAbs() {
		fmt.Fprintf(ctx.Out, "WARNING: PCCS did not beat Gables on %s %s\n", platformName, puName)
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "Predicted and actual slowdowns of 10 Rodinia benchmarks on Xavier GPU",
		Run: func(ctx *Context) error {
			return validationFigure(ctx, "virtual-xavier", "GPU", "CPU", workload.GPUValidationSet())
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Predicted and actual slowdowns of 5 Rodinia benchmarks on Xavier CPU",
		Run: func(ctx *Context) error {
			return validationFigure(ctx, "virtual-xavier", "CPU", "GPU", workload.CPUValidationSet())
		},
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Predicted and actual slowdowns of 10 Rodinia benchmarks on Snapdragon 855 GPU",
		Run: func(ctx *Context) error {
			return validationFigure(ctx, "virtual-snapdragon", "GPU", "CPU", workload.GPUValidationSet())
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Predicted and actual slowdowns of 5 Rodinia benchmarks on Snapdragon 855 CPU",
		Run: func(ctx *Context) error {
			return validationFigure(ctx, "virtual-snapdragon", "CPU", "GPU", workload.CPUValidationSet())
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Predicted and actual slowdowns of VGG19 and ResNet-50 on the Xavier DLA",
		Run: func(ctx *Context) error {
			return validationFigure(ctx, "virtual-xavier", "DLA", "CPU", workload.DLAValidationSet())
		},
	})
}
