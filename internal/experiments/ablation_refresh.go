package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// ablation-refresh quantifies the cost of DRAM refresh, which the platform
// presets leave disabled: refresh steals tRFC out of every tREFI uniformly,
// shaving a few percent off achieved bandwidth without altering the
// contention phenomenology the slowdown model captures — the justification
// for omitting it from the calibrated substrate (DESIGN.md).
func init() {
	register(Experiment{ID: "ablation-refresh", Title: "DRAM refresh overhead on achieved bandwidth and co-run RS", Run: runAblationRefresh})
}

func runAblationRefresh(ctx *Context) error {
	makePlatform := func(refresh bool) *soc.Platform {
		p := soc.VirtualXavier()
		if refresh {
			// LPDDR4x: tREFI ≈ 3.9 µs ≈ 8300 cycles at 2133 MHz (per-bank
			// refresh averaged), tRFC ≈ 280 ns ≈ 600 cycles.
			p.Mem.Timing = p.Mem.Timing.WithRefresh(8300, 600)
			p.Name += "-refresh"
		}
		return p
	}

	tbl := report.NewTable("refresh ablation on the virtual Xavier",
		"metric", "no refresh", "with refresh", "delta %")
	type probe struct {
		name string
		run  func(p *soc.Platform) (float64, error)
	}
	gpu, cpu := 1, 0
	probes := []probe{
		{"GPU standalone achieved @120 GB/s", func(p *soc.Platform) (float64, error) {
			return ctx.StandaloneAchieved(p, gpu, soc.Kernel{Name: "k", DemandGBps: 120})
		}},
		{"GPU co-run RS% @80 vs 60 ext", func(p *soc.Platform) (float64, error) {
			k := soc.Kernel{Name: "k", DemandGBps: 80}
			alone, err := ctx.StandaloneAchieved(p, gpu, k)
			if err != nil {
				return 0, err
			}
			out, err := ctx.RunSim(p, soc.Placement{gpu: k, cpu: soc.ExternalPressure(60)})
			if err != nil {
				return 0, err
			}
			return 100 * out.Results[gpu].AchievedGBps / alone, nil
		}},
	}
	for _, pr := range probes {
		plain, err := pr.run(makePlatform(false))
		if err != nil {
			return err
		}
		refreshed, err := pr.run(makePlatform(true))
		if err != nil {
			return err
		}
		delta := 0.0
		if plain != 0 {
			delta = 100 * (refreshed - plain) / plain
		}
		tbl.Add(pr.name, report.F(plain), report.F(refreshed), report.F(delta))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
