package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/sched"
)

// ext-sched exercises the contention-aware co-run scheduler (§3.4's
// scheduling use case, batch form) on a mixed CPU/GPU/DLA batch: the
// model-guided search against the serial and random-placement baselines
// under each objective, then the makespan schedule replayed through the
// simulator to close the predicted-vs-actual loop.
func init() {
	register(Experiment{ID: "ext-sched", Title: "Contention-aware batch scheduling: model-guided search vs serial and random placement", Run: runExtSched})
}

func runExtSched(ctx *Context) error {
	p := ctx.Xavier()
	items := []sched.Item{
		{Workload: "streamcluster"},
		{Workload: "pathfinder"},
		{Workload: "kmeans"},
		{Workload: "bfs"},
		{Workload: "resnet50"},
		{Workload: "alexnet"},
	}

	serial, err := sched.SerialSchedule(ctx.Models, p, items)
	if err != nil {
		return err
	}
	random, err := sched.RandomSchedule(ctx.Models, p, items, 1)
	if err != nil {
		return err
	}

	tbl := report.NewTable(
		fmt.Sprintf("Scheduling %d workloads on %s: predicted batch metrics", len(items), p.Name),
		"policy", "makespan", "speedup", "busy", "max slowdown")
	addRow := func(name string, s *sched.Schedule) {
		tbl.Add(name, report.F2(s.Makespan), report.F2(s.Speedup), report.F2(s.BusyTime), report.F2(s.MaxSlowdown))
	}
	addRow("serial", serial)
	addRow("random", random)

	var forValidation *sched.Schedule
	for _, obj := range []sched.Objective{sched.Makespan, sched.Throughput, sched.Fairness} {
		s, err := sched.Solve(ctx.Sim, ctx.Models, p, items, sched.Options{Objective: obj})
		if err != nil {
			return err
		}
		addRow("pccs-"+obj.String(), s)
		if obj == sched.Makespan {
			forValidation = s
		}
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}

	val, err := sched.Validate(ctx.Sim, ctx.Exec, p, forValidation, ctx.Run)
	if err != nil {
		return err
	}
	fmt.Fprintf(ctx.Out, "makespan schedule replayed: predicted %.2f vs actual %.2f (%.1f%% error), mean |RS error| %.1f%%\n\n",
		val.PredictedMakespan, val.ActualMakespan, val.MakespanErrorPct, val.MeanAbsRSError)
	return nil
}
