// Package experiments regenerates every table and figure of the paper's
// characterization and evaluation sections on the virtual platforms. Each
// experiment is registered under the paper artifact's identifier (fig2,
// table7, ...) and is runnable through cmd/pccs-experiments or the
// repository's benchmark harness.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Context carries everything an experiment needs: the output writer, the
// constructed models, the simulation window, the virtual platforms, and the
// shared simulation executor. Independent measurement points fan out over
// the executor's worker pool, and standalone measurements are memoized in
// its cache — validation sweeps reuse them heavily.
type Context struct {
	Out    io.Writer
	Models calib.ModelSet
	Run    soc.RunConfig

	// Sim governs every simulator run; the CLI sets it to a
	// signal-cancelled context so ^C aborts mid-figure.
	Sim context.Context
	// Exec is the worker pool every measurement point runs on.
	Exec *simrun.Executor

	// Backends optionally restricts the platforms the cross-backend
	// experiments (ext-backends) sweep; empty means every registered
	// extended family plus the default reference. The CLI's -platform
	// flag sets it.
	Backends []string

	platforms map[string]*soc.Platform
}

// NewContext builds a context. modelPath may be empty to run only the
// experiments that construct their own models.
func NewContext(out io.Writer, modelPath string, rc soc.RunConfig) (*Context, error) {
	ctx := &Context{
		Out:       out,
		Run:       rc,
		Sim:       context.Background(),
		Exec:      simrun.New(0),
		platforms: map[string]*soc.Platform{},
	}
	x, s := soc.VirtualXavier(), soc.VirtualSnapdragon()
	ctx.platforms[x.Name] = x
	ctx.platforms[s.Name] = s
	if modelPath != "" {
		models, err := calib.Load(modelPath)
		if err != nil {
			return nil, err
		}
		ctx.Models = models
	} else {
		ctx.Models = calib.ModelSet{}
	}
	return ctx, nil
}

// Platform returns a cached platform by name.
func (c *Context) Platform(name string) (*soc.Platform, error) {
	p, ok := c.platforms[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown platform %q", name)
	}
	return p, nil
}

// Backend resolves any registered platform by name: the cached virtual
// platforms first (so experiments sharing them also share the memo cache),
// then the platform registry (chiplet, NPU, PIM families).
func (c *Context) Backend(name string) (soc.Backend, error) {
	if p, ok := c.platforms[name]; ok {
		return p, nil
	}
	return platform.Get(name)
}

// Xavier returns the virtual Xavier.
func (c *Context) Xavier() *soc.Platform { return c.platforms["virtual-xavier"] }

// Snapdragon returns the virtual Snapdragon.
func (c *Context) Snapdragon() *soc.Platform { return c.platforms["virtual-snapdragon"] }

// StandaloneAchieved measures (memoized) the standalone achieved bandwidth
// of a kernel on a platform PU.
func (c *Context) StandaloneAchieved(b soc.Backend, pu int, k soc.Kernel) (float64, error) {
	res, err := c.Exec.Cache.Standalone(c.Sim, b, pu, k, c.Run)
	if err != nil {
		return 0, err
	}
	return res.AchievedGBps, nil
}

// RunSim runs one placement under the experiment's context and window.
func (c *Context) RunSim(b soc.Backend, pl soc.Placement) (*soc.RunOutcome, error) {
	return b.RunContext(c.Sim, pl, c.Run)
}

// RunBatch fans a set of independent placements out over the executor pool
// and returns their outcomes in input order.
func (c *Context) RunBatch(b soc.Backend, pls []soc.Placement) ([]*soc.RunOutcome, error) {
	points := make([]simrun.Point, len(pls))
	for i, pl := range pls {
		points[i] = simrun.Point{Placement: pl, Run: c.Run}
	}
	results, err := c.Exec.Execute(c.Sim, b, points)
	if err != nil {
		return nil, err
	}
	outs := make([]*soc.RunOutcome, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		outs[i] = r.Outcome
	}
	return outs, nil
}

// ActualRS measures the achieved relative speed (percent) of kernel k on
// target under external pressure ext GB/s generated on pressurePU.
func (c *Context) ActualRS(b soc.Backend, target int, k soc.Kernel, pressurePU int, ext float64) (float64, error) {
	rs, err := c.ActualRSLadder(b, target, k, pressurePU, []float64{ext})
	if err != nil {
		return 0, err
	}
	return rs[0], nil
}

// ActualRSLadder measures the achieved relative speed of kernel k on target
// under each external demand of the ladder: the standalone reference comes
// from the memo cache and the co-runs fan out over the pool. Results are in
// ladder order, identical to measuring each point serially.
func (c *Context) ActualRSLadder(b soc.Backend, target int, k soc.Kernel, pressurePU int, exts []float64) ([]float64, error) {
	alone, err := c.StandaloneAchieved(b, target, k)
	if err != nil {
		return nil, err
	}
	pls := make([]soc.Placement, len(exts))
	for i, ext := range exts {
		pl := soc.Placement{target: k}
		if ext > 0 {
			pl[pressurePU] = soc.ExternalPressure(ext)
		}
		pls[i] = pl
	}
	outs, err := c.RunBatch(b, pls)
	if err != nil {
		return nil, err
	}
	rs := make([]float64, len(exts))
	for i, out := range outs {
		v := 100.0
		if alone > 0 {
			v = 100 * out.Results[target].AchievedGBps / alone
		}
		if v > 100 {
			v = 100
		}
		rs[i] = v
	}
	return rs, nil
}

// CorunRS measures each placed PU's achieved relative speed (percent) in a
// full co-run, with memoized standalone references; all runs fan out over
// the pool.
func (c *Context) CorunRS(b soc.Backend, pl soc.Placement) (map[int]float64, error) {
	res, err := simrun.RelativeSpeeds(c.Sim, c.Exec, b, pl, c.Run)
	if err != nil {
		return nil, err
	}
	rs := map[int]float64{}
	for pu := range pl {
		rs[pu] = 100 * res[pu].RelativeSpeed
	}
	return rs, nil
}

// PressureLadder returns the paper's external-demand ladder for a platform:
// 10% to 100% of peak DRAM bandwidth in 10% strides (§4.1.1).
func PressureLadder(b soc.Backend) []float64 {
	peak := b.PeakGBps()
	out := make([]float64, 10)
	for i := range out {
		out[i] = peak * float64(i+1) / 10
	}
	return out
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) error
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get fetches an experiment by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
