// Package experiments regenerates every table and figure of the paper's
// characterization and evaluation sections on the virtual platforms. Each
// experiment is registered under the paper artifact's identifier (fig2,
// table7, ...) and is runnable through cmd/pccs-experiments or the
// repository's benchmark harness.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Context carries everything an experiment needs: the output writer, the
// constructed models, the simulation window, and the virtual platforms.
// Standalone measurements are memoized — validation sweeps reuse them
// heavily.
type Context struct {
	Out    io.Writer
	Models calib.ModelSet
	Run    soc.RunConfig

	platforms  map[string]*soc.Platform
	aloneCache map[string]float64
}

// NewContext builds a context. modelPath may be empty to run only the
// experiments that construct their own models.
func NewContext(out io.Writer, modelPath string, rc soc.RunConfig) (*Context, error) {
	ctx := &Context{
		Out:        out,
		Run:        rc,
		platforms:  map[string]*soc.Platform{},
		aloneCache: map[string]float64{},
	}
	x, s := soc.VirtualXavier(), soc.VirtualSnapdragon()
	ctx.platforms[x.Name] = x
	ctx.platforms[s.Name] = s
	if modelPath != "" {
		models, err := calib.Load(modelPath)
		if err != nil {
			return nil, err
		}
		ctx.Models = models
	} else {
		ctx.Models = calib.ModelSet{}
	}
	return ctx, nil
}

// Platform returns a cached platform by name.
func (c *Context) Platform(name string) (*soc.Platform, error) {
	p, ok := c.platforms[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown platform %q", name)
	}
	return p, nil
}

// Xavier returns the virtual Xavier.
func (c *Context) Xavier() *soc.Platform { return c.platforms["virtual-xavier"] }

// Snapdragon returns the virtual Snapdragon.
func (c *Context) Snapdragon() *soc.Platform { return c.platforms["virtual-snapdragon"] }

// StandaloneAchieved measures (memoized) the standalone achieved bandwidth
// of a kernel on a platform PU.
func (c *Context) StandaloneAchieved(p *soc.Platform, pu int, k soc.Kernel) (float64, error) {
	key := fmt.Sprintf("%s/%d/%s/%g/%d/%d/%d/%d-%d",
		p.Name, pu, k.Name, k.DemandGBps, k.RunLines, k.Outstanding, k.Streams,
		c.Run.WarmupCycles, c.Run.MeasureCycles)
	if v, ok := c.aloneCache[key]; ok {
		return v, nil
	}
	res, err := p.Standalone(pu, k, c.Run)
	if err != nil {
		return 0, err
	}
	c.aloneCache[key] = res.AchievedGBps
	return res.AchievedGBps, nil
}

// ActualRS measures the achieved relative speed (percent) of kernel k on
// target under external pressure ext GB/s generated on pressurePU.
func (c *Context) ActualRS(p *soc.Platform, target int, k soc.Kernel, pressurePU int, ext float64) (float64, error) {
	alone, err := c.StandaloneAchieved(p, target, k)
	if err != nil {
		return 0, err
	}
	pl := soc.Placement{target: k}
	if ext > 0 {
		pl[pressurePU] = soc.ExternalPressure(ext)
	}
	out, err := p.Run(pl, c.Run)
	if err != nil {
		return 0, err
	}
	rs := 100.0
	if alone > 0 {
		rs = 100 * out.Results[target].AchievedGBps / alone
	}
	if rs > 100 {
		rs = 100
	}
	return rs, nil
}

// CorunRS measures each placed PU's achieved relative speed (percent) in a
// full co-run, with memoized standalone references.
func (c *Context) CorunRS(p *soc.Platform, pl soc.Placement) (map[int]float64, error) {
	alone := map[int]float64{}
	for pu, k := range pl {
		a, err := c.StandaloneAchieved(p, pu, k)
		if err != nil {
			return nil, err
		}
		alone[pu] = a
	}
	out, err := p.Run(pl, c.Run)
	if err != nil {
		return nil, err
	}
	rs := map[int]float64{}
	for pu := range pl {
		v := 100.0
		if alone[pu] > 0 {
			v = 100 * out.Results[pu].AchievedGBps / alone[pu]
		}
		if v > 100 {
			v = 100
		}
		rs[pu] = v
	}
	return rs, nil
}

// PressureLadder returns the paper's external-demand ladder for a platform:
// 10% to 100% of peak DRAM bandwidth in 10% strides (§4.1.1).
func PressureLadder(p *soc.Platform) []float64 {
	peak := p.PeakGBps()
	out := make([]float64, 10)
	for i := range out {
		out[i] = peak * float64(i+1) / 10
	}
	return out
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Context) error
}

var registry = map[string]Experiment{}

// register adds an experiment; duplicate IDs are a programming error.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get fetches an experiment by ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return e, nil
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
