package experiments

import (
	"strings"
	"testing"
)

func TestRunExtBackendsSmoke(t *testing.T) {
	ctx, buf := testContext(t)
	ctx.Backends = []string{"virtual-xavier", "pim-xavier"}
	e, _ := Get("ext-backends")
	if err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pim-xavier", "source-obliviousness", "bias"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-backends output missing %q:\n%s", want, out)
		}
	}
}
