package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
)

// ext-multimc exercises the §5 extension: SoCs that split their channels
// across multiple memory controllers, each with private fairness state.
// With channel-interleaved mapping every MC sees a proportional slice of
// each PU's traffic, so the single-MC PCCS model remains applicable — this
// experiment quantifies how far multi-MC ground truth drifts from the
// single-MC model's predictions.
func init() {
	register(Experiment{ID: "ext-multimc", Title: "Multi-MC extension: model applicability when channels split across controllers", Run: runExtMultiMC})
}

func runExtMultiMC(ctx *Context) error {
	model, err := ctx.Models.Get("virtual-xavier", "GPU")
	if err != nil {
		return err
	}
	tbl := report.NewTable(
		"Xavier GPU (70 GB/s) under CPU pressure: 1-MC vs 2-MC ground truth vs single-MC PCCS model",
		"ext GB/s", "1-MC RS%", "2-MC RS%", "PCCS RS%", "|1-2 MC gap|")
	exts := []float64{27, 55, 82, 110, 137}
	k := soc.Kernel{Name: "k", DemandGBps: 70}
	// One standalone reference and one fanned-out pressure ladder per MC
	// configuration (the standalone point used to be re-measured for every
	// ladder entry; the memo cache reduces it to one run each).
	measure := func(mcs int) ([]float64, error) {
		p := soc.VirtualXavier()
		p.MCs = mcs
		return ctx.ActualRSLadder(p, 1, k, 0, exts)
	}
	singles, err := measure(1)
	if err != nil {
		return err
	}
	duals, err := measure(2)
	if err != nil {
		return err
	}
	var gaps, errs1, errs2 []float64
	for i, ext := range exts {
		single, dual := singles[i], duals[i]
		pred := model.Predict(70, ext)
		gaps = append(gaps, stats.AbsErr(single, dual))
		errs1 = append(errs1, stats.AbsErr(pred, single))
		errs2 = append(errs2, stats.AbsErr(pred, dual))
		tbl.Add(report.F(ext), report.F(single), report.F(dual), report.F(pred), report.F(stats.AbsErr(single, dual)))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintf(ctx.Out,
		"mean |1-MC vs 2-MC| gap %.1f%%; single-MC model error: %.1f%% on 1-MC, %.1f%% on 2-MC\n\n",
		stats.Mean(gaps), stats.Mean(errs1), stats.Mean(errs2))
	return nil
}
