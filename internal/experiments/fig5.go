package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
)

// cmp16Placement builds the §2.3 CMP workload: cores 0–7 (low-bandwidth
// group) and cores 8–15 (high-bandwidth group) each stream an equal share
// of their group's total demand.
func cmp16Placement(lowTotal, highTotal float64) soc.Placement {
	pl := soc.Placement{}
	for i := 0; i < 8; i++ {
		if lowTotal > 0 {
			pl[i] = soc.Kernel{Name: fmt.Sprintf("low%d", i), DemandGBps: lowTotal / 8}
		}
	}
	for i := 8; i < 16; i++ {
		pl[i] = soc.Kernel{Name: fmt.Sprintf("high%d", i), DemandGBps: highTotal / 8}
	}
	return pl
}

// cmp16HighRS is the mean achieved relative speed of the high group in out,
// against the whole high group running without low-group interference.
func cmp16HighRS(aloneOut, out *soc.RunOutcome) float64 {
	var rss []float64
	for i := 8; i < 16; i++ {
		alone := aloneOut.Results[i].AchievedGBps
		if alone <= 0 {
			continue
		}
		rs := 100 * out.Results[i].AchievedGBps / alone
		if rs > 100 {
			rs = 100
		}
		rss = append(rss, rs)
	}
	return stats.Mean(rss)
}

// cmp16Corun measures one (low, high) co-run and its high-group-alone
// reference, fanning both runs out. It returns the mean achieved relative
// speed of the high group plus the memory-system stats.
func cmp16Corun(ctx *Context, policy memctrl.PolicyKind, lowTotal, highTotal float64) (float64, *soc.RunOutcome, error) {
	p := soc.CMP16(policy)
	outs, err := ctx.RunBatch(p, []soc.Placement{
		cmp16Placement(0, highTotal),
		cmp16Placement(lowTotal, highTotal),
	})
	if err != nil {
		return 0, nil, err
	}
	return cmp16HighRS(outs[0], outs[1]), outs[1], nil
}

// fig5 reproduces the scheduling-policy validation: the high-bandwidth
// group's achieved relative speed under rising low-group pressure, for all
// five memory scheduling policies. Fairness-aware policies (ATLAS, TCM,
// SMS) flatten out — the contention balance point — while FCFS degrades
// proportionally and FR-FCFS lets the heavier streams dominate.
func init() {
	register(Experiment{ID: "fig5", Title: "High-BW group relative speed under five MC scheduling policies (CMP16)", Run: runFig5})
	register(Experiment{ID: "table3", Title: "Row-buffer hit rate and effective BW per scheduling policy at saturation", Run: runTable3})
}

func runFig5(ctx *Context) error {
	lowLevels := []float64{6, 12, 18, 24, 30, 36, 42, 48, 54, 60}
	highLevels := []float64{36, 63, 90}
	for _, policy := range memctrl.AllPolicies {
		// One batch per policy: each high level contributes its alone
		// reference plus the whole low-level ladder, all independent.
		p := soc.CMP16(policy)
		var pls []soc.Placement
		for _, high := range highLevels {
			pls = append(pls, cmp16Placement(0, high))
			for _, low := range lowLevels {
				pls = append(pls, cmp16Placement(low, high))
			}
		}
		outs, err := ctx.RunBatch(p, pls)
		if err != nil {
			return err
		}
		lines := map[string][]float64{}
		idx := 0
		for _, high := range highLevels {
			aloneOut := outs[idx]
			idx++
			var ys []float64
			for range lowLevels {
				ys = append(ys, cmp16HighRS(aloneOut, outs[idx]))
				idx++
			}
			lines[fmt.Sprintf("high=%.0fGB/s", high)] = ys
		}
		if err := report.SeriesChart(ctx.Out,
			fmt.Sprintf("Fig 5 — %s: high-group achieved relative speed (%%)", policy),
			"low GB/s", lowLevels, lines); err != nil {
			return err
		}
		fmt.Fprintln(ctx.Out)
	}
	return nil
}

// runTable3 measures row-buffer hit rate and effective bandwidth for each
// policy when the co-located groups' standalone demands exceed the
// theoretical peak (low 60 + high 90 on a 102.4 GB/s system), plus the
// virtual Xavier's effective bandwidth under equivalent saturation.
func runTable3(ctx *Context) error {
	tbl := report.NewTable(
		"Table 3 — RBH and effective BW at saturation (low 60 + high 90 GB/s on 102.4 GB/s DDR4)",
		"policy", "RBH %", "effective BW % of peak")
	for _, policy := range memctrl.AllPolicies {
		_, out, err := cmp16Corun(ctx, policy, 60, 90)
		if err != nil {
			return err
		}
		peak := soc.CMP16(policy).PeakGBps()
		tbl.Add(policy.String(),
			report.F(100*out.RowHitRate),
			report.F(100*out.EffectiveGBps/peak))
	}
	// Xavier column: saturate the virtual Xavier with GPU + CPU streams.
	x := ctx.Xavier()
	out, err := ctx.RunSim(x, soc.Placement{
		x.PUIndex("GPU"): soc.Kernel{Name: "sat-gpu", DemandGBps: 0.8 * x.PeakGBps()},
		x.PUIndex("CPU"): soc.Kernel{Name: "sat-cpu", DemandGBps: 0.6 * x.PeakGBps()},
	})
	if err != nil {
		return err
	}
	tbl.Add("Xavier(virt)", "-", report.F(100*out.EffectiveGBps/x.PeakGBps()))
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
