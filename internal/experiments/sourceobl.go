package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
)

// sourceobl validates the source-obliviousness insight the whole
// methodology rests on (§3.2): the slowdown a kernel experiences depends on
// the amount of external traffic, not on which processors generate it.
// The same total external demand is generated from different source mixes
// and the target's achieved relative speed is compared.
func init() {
	register(Experiment{ID: "sourceobl", Title: "Source-obliviousness validation: same external total, different source mixes", Run: runSourceObl})
}

func runSourceObl(ctx *Context) error {
	p := ctx.Xavier()
	gpu, cpu, dla := p.PUIndex("GPU"), p.PUIndex("CPU"), p.PUIndex("DLA")
	k := soc.Kernel{Name: "target", DemandGBps: 70}

	mixes := []struct {
		name string
		pl   func(ext float64) soc.Placement
	}{
		{"CPU only", func(e float64) soc.Placement {
			return soc.Placement{gpu: k, cpu: soc.ExternalPressure(e)}
		}},
		{"DLA only", func(e float64) soc.Placement {
			return soc.Placement{gpu: k, dla: soc.ExternalPressure(e)}
		}},
		{"CPU+DLA half each", func(e float64) soc.Placement {
			return soc.Placement{gpu: k, cpu: soc.ExternalPressure(e / 2), dla: soc.ExternalPressure(e / 2)}
		}},
	}

	alone, err := ctx.StandaloneAchieved(p, gpu, k)
	if err != nil {
		return err
	}
	exts := []float64{20, 40, 60}
	// All ext × mix co-runs are independent: fan the full grid out at once.
	var pls []soc.Placement
	for _, ext := range exts {
		for _, mix := range mixes {
			pls = append(pls, mix.pl(ext))
		}
	}
	outs, err := ctx.RunBatch(p, pls)
	if err != nil {
		return err
	}
	tbl := report.NewTable("source-obliviousness on Xavier GPU (target 70 GB/s)",
		"ext total GB/s", mixes[0].name, mixes[1].name, mixes[2].name, "spread")
	maxSpread := 0.0
	for ei, ext := range exts {
		row := []string{report.F(ext)}
		var vals []float64
		for mi := range mixes {
			out := outs[ei*len(mixes)+mi]
			rs := 100 * out.Results[gpu].AchievedGBps / alone
			if rs > 100 {
				rs = 100
			}
			vals = append(vals, rs)
			row = append(row, report.F(rs))
		}
		spread := stats.Max(vals) - stats.Min(vals)
		if spread > maxSpread {
			maxSpread = spread
		}
		row = append(row, report.F(spread))
		tbl.Add(row...)
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintf(ctx.Out, "max spread across source mixes: %.1f%% — %s\n\n",
		maxSpread, map[bool]string{true: "source-oblivious ✓", false: "WARNING: source mix matters"}[maxSpread < 6])
	return nil
}
