package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// fig3 reproduces the three-region characterization: synthetic kernels with
// demands from 10% to 100% of peak run on the Xavier GPU against an
// external-demand ladder; the resulting speed curves fall into the minor /
// normal / intensive classes the model is built on (panels a, b, c).
func init() {
	register(Experiment{ID: "fig3", Title: "Synthetic kernel speed curves under external pressure (three regions)", Run: runFig3})
}

func runFig3(ctx *Context) error {
	p := ctx.Xavier()
	peak := p.PeakGBps()
	target, pressure := p.PUIndex("GPU"), p.PUIndex("CPU")
	ladder := PressureLadder(p)

	panels := []struct {
		name    string
		demands []float64
	}{
		{"(a) low demand", []float64{0.07 * peak, 0.15 * peak, 0.22 * peak}},
		{"(b) medium demand", []float64{0.3 * peak, 0.44 * peak, 0.58 * peak}},
		{"(c) high demand", []float64{0.66 * peak, 0.73 * peak, 0.8 * peak}},
	}
	for _, panel := range panels {
		lines := map[string][]float64{}
		for _, d := range panel.demands {
			k := soc.Kernel{Name: fmt.Sprintf("syn-%.0f", d), DemandGBps: d}
			var ys []float64
			for _, ext := range ladder {
				rs, err := ctx.ActualRS(p, target, k, pressure, ext)
				if err != nil {
					return err
				}
				ys = append(ys, rs)
			}
			lines[fmt.Sprintf("%.0fGB/s", d)] = ys
		}
		if err := report.SeriesChart(ctx.Out, "Fig 3 "+panel.name+" — achieved relative speed (%) on Xavier GPU",
			"ext GB/s", ladder, lines); err != nil {
			return err
		}
		fmt.Fprintln(ctx.Out)
	}
	return nil
}
