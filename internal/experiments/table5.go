package experiments

import (
	"fmt"
	"math"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/stats"
)

// table5 reproduces the linear-scaling validation (§3.3): scale the Xavier
// GPU model's bandwidth parameters down to three reduced memory clocks and
// compare against models re-constructed from scratch on the under-clocked
// platform. The paper reports ≤ ~3% average error per parameter.
func init() {
	register(Experiment{ID: "table5", Title: "Linear parameter scaling vs re-constructed models at reduced memory clocks", Run: runTable5})
}

func runTable5(ctx *Context) error {
	base, err := ctx.Models.Get("virtual-xavier", "GPU")
	if err != nil {
		return err
	}
	x := ctx.Xavier()
	gpu := x.PUIndex("GPU")

	// Paper clocks: 2133 MHz base, scaled to 1066, 1333, 1600 MHz.
	ratios := []float64{1066.0 / 2133, 1333.0 / 2133, 1600.0 / 2133}
	type paramErr struct {
		name string
		get  func(core.Params) float64
	}
	params := []paramErr{
		{"Normal BW (GB/s)", func(p core.Params) float64 { return p.NormalBW }},
		{"Intensive BW (GB/s)", func(p core.Params) float64 { return p.IntensiveBW }},
		{"MRMC (%)", func(p core.Params) float64 { return p.MRMC }},
		{"CBP (GB/s)", func(p core.Params) float64 { return p.CBP }},
		{"TBWDC (GB/s)", func(p core.Params) float64 { return p.TBWDC }},
		{"RateN (%/GBps)", func(p core.Params) float64 { return p.RateN }},
	}
	errsByParam := make(map[string][]float64)

	tbl := report.NewTable("Table 5 — scaled vs re-constructed parameters (Xavier GPU)",
		"mem clock", "parameter", "scaled", "constructed", "rel err %")
	for _, r := range ratios {
		scaled := base.Scale(r)
		plat := x.ScaleMemory(r)
		constructed, _, err := calib.ConstructPU(plat, gpu, ctx.Run, calib.DefaultOptions())
		if err != nil {
			return fmt.Errorf("table5: reconstruct at ratio %.3f: %w", r, err)
		}
		clock := fmt.Sprintf("%.0fMHz", 2133*r)
		for _, pe := range params {
			s, c := pe.get(scaled), pe.get(constructed)
			rel := 0.0
			if ref := math.Max(math.Abs(c), 1e-9); ref > 0 {
				rel = 100 * math.Abs(s-c) / ref
			}
			// Relative error on near-zero parameters (e.g. a vanishing
			// MRMC) explodes meaninglessly; report against the peak-scaled
			// magnitude instead, as the paper's percent-of-value errors do.
			if math.Abs(c) < 0.5 {
				rel = 100 * math.Abs(s-c) / math.Max(scaled.PeakBW/10, 1)
			}
			errsByParam[pe.name] = append(errsByParam[pe.name], rel)
			tbl.Add(clock, pe.name, report.F2(s), report.F2(c), report.F(rel))
		}
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}

	avg := report.NewTable("average scaling error per parameter (paper: 1.5–2.2%)",
		"parameter", "avg rel err %")
	for _, pe := range params {
		avg.Add(pe.name, report.F(stats.Mean(errsByParam[pe.name])))
	}
	if _, err := avg.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
