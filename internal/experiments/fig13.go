package experiments

import (
	"fmt"

	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// fig13 reproduces the multi-phase study: predicting cfd's co-run slowdown
// from its average bandwidth demand underestimates the slowdown, while
// predicting each phase and aggregating by standalone time share tracks the
// ground truth (paper Fig. 13: 19.4% error → 4.6%).
//
// Ground truth runs each cfd phase as its own kernel and aggregates the
// measured phase slowdowns by their standalone time shares — exactly how a
// phase-faithful execution of the program would experience the co-run.
func init() {
	register(Experiment{ID: "fig13", Title: "cfd multi-phase prediction: average BW vs piece-wise BW", Run: runFig13})
}

func runFig13(ctx *Context) error {
	const platformName, puName, pressureName = "virtual-xavier", "GPU", "CPU"
	p, err := ctx.Platform(platformName)
	if err != nil {
		return err
	}
	target, pressure := p.PUIndex(puName), p.PUIndex(pressureName)
	model, err := ctx.Models.Get(platformName, puName)
	if err != nil {
		return err
	}
	cfd, err := workload.Get("cfd")
	if err != nil {
		return err
	}
	phases, err := cfd.ModelPhases(platformName, puName)
	if err != nil {
		return err
	}
	avgDemand, err := cfd.DemandOn(platformName, puName)
	if err != nil {
		return err
	}

	tbl := report.NewTable(
		"cfd on Xavier GPU: actual vs average-BW vs piece-wise predictions",
		"ext GB/s", "actual RS%", "avg-BW RS%", "piecewise RS%")
	avgErr := stats.NewErrorTracker("average-BW")
	pieceErr := stats.NewErrorTracker("piece-wise")

	for _, ext := range PressureLadder(p) {
		// Ground truth: run each phase, aggregate by standalone time share.
		dilation := 0.0
		for _, ph := range phases {
			k := soc.Kernel{Name: "cfd-" + ph.Name, DemandGBps: ph.DemandGBps, RunLines: cfd.RunLines}
			rs, err := ctx.ActualRS(p, target, k, pressure, ext)
			if err != nil {
				return err
			}
			dilation += ph.Weight * (100 / rs)
		}
		actual := 100 / dilation

		flat := model.Predict(avgDemand, ext)
		piecewise, err := model.PredictPhases(phases, ext)
		if err != nil {
			return err
		}
		avgErr.Add(flat, actual)
		pieceErr.Add(piecewise, actual)
		tbl.Add(report.F(ext), report.F(actual), report.F(flat), report.F(piecewise))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintf(ctx.Out,
		"cfd prediction |error|: average-BW %.1f%%, piece-wise %.1f%% (paper: 19.4%% → 4.6%%)\n\n",
		avgErr.MeanAbs(), pieceErr.MeanAbs())
	if pieceErr.MeanAbs() > avgErr.MeanAbs() {
		fmt.Fprintln(ctx.Out, "WARNING: piece-wise prediction did not improve on average-BW")
	}
	return nil
}
