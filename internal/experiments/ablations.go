package experiments

import (
	"fmt"
	"math"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// three-region structure, the robust-vs-strict extraction, the calibrator
// grid density, and the dependence of the phenomenology on fairness-aware
// memory scheduling.

func init() {
	register(Experiment{ID: "ablation-piecewise", Title: "Three-region model vs region-blind single-rate variant", Run: runAblationPiecewise})
	register(Experiment{ID: "ablation-extraction", Title: "Robust vs strict (paper-literal) parameter extraction", Run: runAblationExtraction})
	register(Experiment{ID: "ablation-calibrators", Title: "Model quality vs calibrator ladder density", Run: runAblationCalibrators})
	register(Experiment{ID: "ablation-policies", Title: "Three-region phenomenology across MC scheduling policies", Run: runAblationPolicies})
}

// sweepPU runs a construction sweep for one Xavier PU and returns the
// matrix (shared by the ablations).
func sweepPU(ctx *Context, puName string, levels int) (*calib.Matrix, error) {
	p := ctx.Xavier()
	target := p.PUIndex(puName)
	pressure, err := calib.PressurePUFor(p, target)
	if err != nil {
		return nil, err
	}
	cfg := calib.DefaultSweep(p, target, pressure)
	cfg.Run = ctx.Run
	if levels > 0 && levels < len(cfg.Calibrators) {
		// Thin the ladder to the requested number of levels.
		step := float64(len(cfg.Calibrators)) / float64(levels)
		var thin []traffic.Spec
		for i := 0; i < levels; i++ {
			thin = append(thin, cfg.Calibrators[int(float64(i)*step+step/2)])
		}
		cfg.Calibrators = thin
	}
	return calib.Sweep(p, cfg)
}

// matrixError is the mean |prediction − measurement| of a model over a
// measured matrix.
func matrixError(m *calib.Matrix, pred func(x, y float64) float64) float64 {
	var sum float64
	var n int
	for i, x := range m.StdBW {
		for j, y := range m.ExtBW {
			sum += math.Abs(pred(x, y) - m.Rela[i][j])
			n++
		}
	}
	return sum / float64(n)
}

// regionBlind builds the single-rate ablation variant: same TBWDC/CBP, but
// every kernel is treated as normal-region with one rate (no minor flat
// line, no intensive rate amplification).
func regionBlind(p core.Params) func(x, y float64) float64 {
	return func(x, y float64) float64 {
		if y <= 0 {
			return 100
		}
		yEff := math.Min(y, p.CBP)
		red := math.Max((x+yEff-p.TBWDC)*p.RateN, 0)
		rs := 100 - red
		if rs < 1 {
			rs = 1
		}
		return rs
	}
}

func runAblationPiecewise(ctx *Context) error {
	tbl := report.NewTable("three-region vs region-blind prediction error on construction matrices",
		"PU", "three-region (PCCS)", "region-blind single-rate")
	worse := 0
	// The GPU's matrix is nearly region-free (its giant minor region and
	// post-peak onset leave little for the classification to do); the DLA,
	// with no minor region and immediate drops, is where the regions and
	// the Eq. 4 rate amplification earn their keep.
	for _, pu := range []string{"GPU", "DLA"} {
		m, err := sweepPU(ctx, pu, 0)
		if err != nil {
			return err
		}
		params, err := calib.Extract(m, calib.DefaultOptions())
		if err != nil {
			return err
		}
		full := matrixError(m, params.Predict)
		blind := matrixError(m, regionBlind(params))
		if full > blind {
			worse++
		}
		tbl.Add(pu, report.F(full), report.F(blind))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	if worse == 2 {
		fmt.Fprintln(ctx.Out, "WARNING: region structure did not improve accuracy on any PU")
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

func runAblationExtraction(ctx *Context) error {
	m, err := sweepPU(ctx, "GPU", 0)
	if err != nil {
		return err
	}
	tbl := report.NewTable("robust vs strict extraction on the same matrix",
		"mode", "mean |err| %", "parameters")
	for _, mode := range []calib.Mode{calib.Robust, calib.Strict} {
		params, err := calib.Extract(m, calib.Options{Mode: mode})
		if err != nil {
			tbl.Add(mode.String(), "failed", err.Error())
			continue
		}
		tbl.Add(mode.String(), report.F(matrixError(m, params.Predict)), params.String())
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

func runAblationCalibrators(ctx *Context) error {
	// Build a dense validation matrix once, then models from thinner
	// ladders, and score each model against the dense measurement.
	dense, err := sweepPU(ctx, "GPU", 0)
	if err != nil {
		return err
	}
	tbl := report.NewTable("model accuracy vs calibrator ladder density (validated on the 10-level grid)",
		"calibrator levels", "mean |err| %")
	for _, levels := range []int{3, 5, 10} {
		m := dense
		if levels < 10 {
			m, err = sweepPU(ctx, "GPU", levels)
			if err != nil {
				return err
			}
		}
		params, err := calib.Extract(m, calib.DefaultOptions())
		if err != nil {
			tbl.Add(fmt.Sprint(levels), "extraction failed: "+err.Error())
			continue
		}
		tbl.Add(fmt.Sprint(levels), report.F(matrixError(dense, params.Predict)))
	}
	if _, err := tbl.WriteTo(ctx.Out); err != nil {
		return err
	}
	fmt.Fprintln(ctx.Out)
	return nil
}

// runAblationPolicies sweeps one medium-demand kernel under each scheduling
// policy, showing that the flat-tail (contention balance) behaviour the
// PCCS model encodes appears under fairness-aware policies and not under
// FCFS/FR-FCFS (§2.3's argument, on the Xavier platform).
func runAblationPolicies(ctx *Context) error {
	base := ctx.Xavier()
	ladder := PressureLadder(base)
	demand := 0.45 * base.PeakGBps()
	lines := map[string][]float64{}
	for _, policy := range memctrl.AllPolicies {
		p := soc.VirtualXavier()
		p.Policy = policy
		gpu, cpu := p.PUIndex("GPU"), p.PUIndex("CPU")
		k := soc.Kernel{Name: "medium", DemandGBps: demand}
		// Each policy's whole pressure ladder fans out over the pool.
		ys, err := ctx.ActualRSLadder(p, gpu, k, cpu, ladder)
		if err != nil {
			return err
		}
		lines[policy.String()] = ys
	}
	if err := report.SeriesChart(ctx.Out,
		fmt.Sprintf("medium kernel (%.0f GB/s) on Xavier GPU under each MC policy", demand),
		"ext GB/s", ladder, lines); err != nil {
		return err
	}
	// Quantify the flat tail: relative change over the last three ladder
	// points should be small for fairness-aware policies.
	fmt.Fprintln(ctx.Out)
	for _, policy := range memctrl.AllPolicies {
		ys := lines[policy.String()]
		tail := math.Abs(ys[len(ys)-1] - ys[len(ys)-3])
		fmt.Fprintf(ctx.Out, "%-8s tail movement %.1f%%  fairness-aware=%v\n",
			policy, tail, policy.FairnessAware())
	}
	fmt.Fprintln(ctx.Out)
	return nil
}
