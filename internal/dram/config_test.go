package dram

import (
	"math"
	"testing"
)

func TestValidatePresets(t *testing.T) {
	for _, cfg := range []Config{XavierLPDDR4X(), SnapdragonLPDDR4X(), CMPDDR4()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v, want nil", cfg.Name, err)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	base := CMPDDR4()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero channels", func(c *Config) { c.Channels = 0 }},
		{"non-pow2 channels", func(c *Config) { c.Channels = 3 }},
		{"zero banks", func(c *Config) { c.BanksPerChannel = 0 }},
		{"non-pow2 banks", func(c *Config) { c.BanksPerChannel = 6 }},
		{"zero line", func(c *Config) { c.LineBytes = 0 }},
		{"non-pow2 line", func(c *Config) { c.LineBytes = 48 }},
		{"row smaller than line", func(c *Config) { c.RowBytes = 32 }},
		{"row not multiple of line", func(c *Config) { c.RowBytes = 96 }},
		{"zero bus", func(c *Config) { c.BusBytes = 0 }},
		{"zero clock", func(c *Config) { c.ClockMHz = 0 }},
		{"zero CL", func(c *Config) { c.Timing.CL = 0 }},
		{"zero RCD", func(c *Config) { c.Timing.RCD = 0 }},
		{"zero RP", func(c *Config) { c.Timing.RP = 0 }},
		{"line under one beat pair", func(c *Config) { c.BusBytes = 64 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestPeakBandwidthMatchesPaper(t *testing.T) {
	// Table 1: 102.4 GB/s theoretical bandwidth for the CMP DDR4 system.
	if got := CMPDDR4().PeakGBps(); math.Abs(got-102.4) > 0.1 {
		t.Errorf("CMPDDR4 peak = %.2f GB/s, want 102.4", got)
	}
	// Table 6: Xavier 137 GB/s (theoretical 136.5), Snapdragon 34 GB/s.
	if got := XavierLPDDR4X().PeakGBps(); math.Abs(got-136.5) > 0.5 {
		t.Errorf("Xavier peak = %.2f GB/s, want ~136.5", got)
	}
	if got := SnapdragonLPDDR4X().PeakGBps(); math.Abs(got-34.1) > 0.2 {
		t.Errorf("Snapdragon peak = %.2f GB/s, want ~34.1", got)
	}
}

func TestBurstCycles(t *testing.T) {
	// CMP: 64B line over a 8B bus, DDR: 64/(2*8) = 4 cycles.
	if got := CMPDDR4().BurstCycles(); got != 4 {
		t.Errorf("CMP burst = %d cycles, want 4", got)
	}
	// Xavier: 64B over 4B bus: 64/(2*4) = 8 cycles.
	if got := XavierLPDDR4X().BurstCycles(); got != 8 {
		t.Errorf("Xavier burst = %d cycles, want 8", got)
	}
}

func TestLinesPerRow(t *testing.T) {
	if got := CMPDDR4().LinesPerRow(); got != 64 {
		t.Errorf("LinesPerRow = %d, want 64 (4KB row / 64B line)", got)
	}
}

func TestScaleIsLinearInClock(t *testing.T) {
	base := XavierLPDDR4X()
	half := base.Scale(0.5)
	if err := half.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	if got, want := half.PeakBytesPerSec(), base.PeakBytesPerSec()/2; math.Abs(got-want) > 1 {
		t.Errorf("scaled peak = %v, want %v", got, want)
	}
	if half.Name == base.Name {
		t.Errorf("scaled config should be renamed, got %q", half.Name)
	}
}

func TestChannelPeakConsistency(t *testing.T) {
	for _, cfg := range []Config{XavierLPDDR4X(), SnapdragonLPDDR4X(), CMPDDR4()} {
		total := cfg.ChannelPeakBytesPerSec() * float64(cfg.Channels)
		if math.Abs(total-cfg.PeakBytesPerSec()) > 1 {
			t.Errorf("%s: per-channel × channels = %v, total = %v", cfg.Name, total, cfg.PeakBytesPerSec())
		}
	}
}
