package dram

// RowClosed marks a bank whose row buffer holds no open row.
const RowClosed int64 = -1

// AccessKind classifies the row-buffer outcome of one access.
type AccessKind int

const (
	// RowHit: the requested row was already open in the bank's row buffer.
	RowHit AccessKind = iota
	// RowEmpty: the bank had no open row; an activate was required.
	RowEmpty
	// RowConflict: a different row was open; precharge + activate required.
	RowConflict
)

func (k AccessKind) String() string {
	switch k {
	case RowHit:
		return "hit"
	case RowEmpty:
		return "empty"
	case RowConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// Bank tracks the state of one DRAM bank: the open row, when the bank can
// next accept a command, and when the current row's tRAS window expires.
type Bank struct {
	OpenRow     int64 // RowClosed if no row is open
	ReadyAt     int64 // cycle at which the bank can accept the next command
	ActivatedAt int64 // cycle of the last activate, for tRAS accounting
}

// Reset returns the bank to the powered-up, all-rows-closed state.
func (b *Bank) Reset() {
	b.OpenRow = RowClosed
	b.ReadyAt = 0
	b.ActivatedAt = 0
}

// Access performs one line read/write against the bank under open-page
// policy and returns the row-buffer outcome and the cycle at which the
// column command issues (data follows CL cycles later).
//
// now is the cycle at which the controller issues the access. burst is the
// column-to-column command spacing in cycles (tCCD, equal to the burst
// length): consecutive column commands to the same open row pipeline at that
// spacing, with their CAS latencies overlapping — this is what lets a single
// bank stream at full bus rate. The caller is responsible for data-bus
// arbitration; Access accounts only for bank-local timing (tRP, tRCD, tRAS,
// tCCD) and leaves the row open afterwards.
func (b *Bank) Access(now int64, row int64, t Timing, burst int64) (kind AccessKind, colCmdAt int64) {
	start := now
	if b.ReadyAt > start {
		start = b.ReadyAt
	}
	switch {
	case b.OpenRow == row:
		kind = RowHit
		colCmdAt = start
	case b.OpenRow == RowClosed:
		kind = RowEmpty
		colCmdAt = start + t.RCD
		b.ActivatedAt = start
	default:
		kind = RowConflict
		// Precharge may not cut the previous row's tRAS window short.
		pre := start
		if min := b.ActivatedAt + t.RAS; min > pre {
			pre = min
		}
		colCmdAt = pre + t.RP + t.RCD
		b.ActivatedAt = pre + t.RP
	}
	b.OpenRow = row
	b.ReadyAt = colCmdAt + burst
	return kind, colCmdAt
}
