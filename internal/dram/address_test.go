package dram

import (
	"testing"
	"testing/quick"
)

func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, cfg := range []Config{XavierLPDDR4X(), SnapdragonLPDDR4X(), CMPDDR4()} {
		m := NewMapper(cfg)
		f := func(raw int64) bool {
			if raw < 0 {
				raw = -raw
			}
			addr := (raw % (1 << 34)) &^ int64(cfg.LineBytes-1) // line-aligned, ≤16GB
			return m.Encode(m.Decode(addr)) == addr
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: decode/encode not a bijection: %v", cfg.Name, err)
		}
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	cfg := XavierLPDDR4X()
	m := NewMapper(cfg)
	f := func(raw int64) bool {
		if raw < 0 {
			raw = -raw
		}
		l := m.Decode(raw % (1 << 36))
		return l.Channel >= 0 && l.Channel < cfg.Channels &&
			l.Bank >= 0 && l.Bank < cfg.BanksPerChannel &&
			l.Row >= 0 &&
			l.Col >= 0 && l.Col < cfg.LinesPerRow()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("decoded fields out of range: %v", err)
	}
}

func TestConsecutiveLinesInterleaveChannels(t *testing.T) {
	cfg := CMPDDR4()
	m := NewMapper(cfg)
	for i := 0; i < cfg.Channels*4; i++ {
		addr := int64(i * cfg.LineBytes)
		if got, want := m.Decode(addr).Channel, i%cfg.Channels; got != want {
			t.Fatalf("line %d: channel = %d, want %d", i, got, want)
		}
	}
}

func TestSequentialStreamStaysInRowPerChannel(t *testing.T) {
	// A sequential stream should produce runs of same-row accesses within a
	// channel (the row locality that FR-FCFS exploits).
	cfg := CMPDDR4()
	m := NewMapper(cfg)
	perChannelRows := make(map[int]map[int64]bool)
	linesPerSweep := cfg.Channels * cfg.LinesPerRow() // one row per channel
	for i := 0; i < linesPerSweep; i++ {
		l := m.Decode(int64(i * cfg.LineBytes))
		if perChannelRows[l.Channel] == nil {
			perChannelRows[l.Channel] = map[int64]bool{}
		}
		perChannelRows[l.Channel][l.Row] = true
	}
	for ch, rows := range perChannelRows {
		if len(rows) != 1 {
			t.Errorf("channel %d: sequential sweep touched %d rows, want 1", ch, len(rows))
		}
	}
}

func TestXORBankSpreadsStridedTraffic(t *testing.T) {
	// Row-sized strides within one channel must not camp on a single bank:
	// the XOR fold must spread them across all banks.
	cfg := CMPDDR4()
	m := NewMapper(cfg)
	banks := map[int]bool{}
	lineBytes := int64(cfg.LineBytes)
	linesPerRow := int64(cfg.LinesPerRow())
	chans := int64(cfg.Channels)
	nbanks := int64(cfg.BanksPerChannel)
	for row := int64(0); row < nbanks; row++ {
		// Address with rawBank = 0 and the given row.
		rest := row * nbanks * linesPerRow
		addr := rest * chans * lineBytes
		banks[m.Decode(addr).Bank] = true
	}
	if len(banks) != cfg.BanksPerChannel {
		t.Errorf("XOR mapping: %d distinct banks across %d rows, want %d",
			len(banks), cfg.BanksPerChannel, cfg.BanksPerChannel)
	}
}
