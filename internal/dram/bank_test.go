package dram

import (
	"testing"
	"testing/quick"
)

func TestBankAccessKinds(t *testing.T) {
	tm := DDR4_3200()
	const burst = 4
	var b Bank
	b.Reset()

	kind, col := b.Access(0, 7, tm, burst)
	if kind != RowEmpty {
		t.Errorf("first access: kind = %v, want empty", kind)
	}
	if col != tm.RCD {
		t.Errorf("first access: colCmdAt = %d, want tRCD = %d", col, tm.RCD)
	}
	if b.ReadyAt != col+burst {
		t.Errorf("bank ready at %d, want colCmdAt+tCCD = %d", b.ReadyAt, col+burst)
	}

	kind, col2 := b.Access(b.ReadyAt, 7, tm, burst)
	if kind != RowHit {
		t.Errorf("same row: kind = %v, want hit", kind)
	}
	if col2 != col+burst {
		t.Errorf("pipelined hit colCmdAt = %d, want %d (tCCD spacing)", col2, col+burst)
	}

	now := b.ReadyAt
	kind, col3 := b.Access(now, 9, tm, burst)
	if kind != RowConflict {
		t.Errorf("different row: kind = %v, want conflict", kind)
	}
	if col3 < now+tm.RP+tm.RCD {
		t.Errorf("conflict colCmdAt = %d, want ≥ now+tRP+tRCD = %d", col3, now+tm.RP+tm.RCD)
	}
}

func TestBankConflictRespectsRAS(t *testing.T) {
	tm := DDR4_3200()
	const burst = 4
	var b Bank
	b.Reset()
	b.Access(0, 1, tm, burst) // activate row 1 at cycle 0
	// Immediately conflict to row 2: precharge cannot happen before tRAS.
	_, col2 := b.Access(b.ReadyAt, 2, tm, burst)
	if wantMin := tm.RAS + tm.RP + tm.RCD; col2 < wantMin {
		t.Errorf("conflict after fresh activate: colCmdAt = %d, want ≥ %d", col2, wantMin)
	}
}

func TestBankAccessNeverTravelsBackInTime(t *testing.T) {
	tm := LPDDR4X_2133()
	const burst = 8
	f := func(rows []int64, gaps []int64) bool {
		var b Bank
		b.Reset()
		now := int64(0)
		prevCol := int64(-1)
		for i, r := range rows {
			if r < 0 {
				r = -r
			}
			r %= 16
			if i < len(gaps) {
				g := gaps[i]
				if g < 0 {
					g = -g
				}
				now += g % 1000
			}
			_, col := b.Access(now, r, tm, burst)
			if col < now {
				return false
			}
			// Column commands to one bank must keep tCCD spacing.
			if prevCol >= 0 && col < prevCol+burst {
				return false
			}
			if b.ReadyAt != col+burst {
				return false
			}
			prevCol = col
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("bank timing monotonicity violated: %v", err)
	}
}

func TestAccessKindString(t *testing.T) {
	cases := map[AccessKind]string{RowHit: "hit", RowEmpty: "empty", RowConflict: "conflict", AccessKind(42): "unknown"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("AccessKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
