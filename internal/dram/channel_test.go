package dram

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestChannelServiceRowHitFasterThanConflict(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)

	first := ch.Service(0, 0, 5)
	if first.Kind != RowEmpty {
		t.Fatalf("first access kind = %v, want empty", first.Kind)
	}
	hit := ch.Service(first.Done, 0, 5)
	if hit.Kind != RowHit {
		t.Fatalf("second access kind = %v, want hit", hit.Kind)
	}
	hitLatency := hit.Done - first.Done

	conf := ch.Service(hit.Done, 0, 6)
	if conf.Kind != RowConflict {
		t.Fatalf("third access kind = %v, want conflict", conf.Kind)
	}
	confLatency := conf.Done - hit.Done
	if hitLatency >= confLatency {
		t.Errorf("hit latency %d not faster than conflict latency %d", hitLatency, confLatency)
	}
}

func TestChannelBusNeverDoubleBooked(t *testing.T) {
	cfg := CMPDDR4()
	f := func(banksRaw, rowsRaw []int8) bool {
		ch := NewChannel(cfg)
		now := int64(0)
		type slot struct{ start, end int64 }
		var slots []slot
		n := len(banksRaw)
		if len(rowsRaw) < n {
			n = len(rowsRaw)
		}
		for i := 0; i < n; i++ {
			bank := int(banksRaw[i]&0x7F) % cfg.BanksPerChannel
			row := int64(rowsRaw[i]&0x7F) % 32
			res := ch.Service(now, bank, row)
			if res.Done-res.DataStart != cfg.BurstCycles() {
				return false
			}
			if res.DataStart < now {
				return false // data cannot start before the decision
			}
			slots = append(slots, slot{res.DataStart, res.Done})
			if res.DataStart > now {
				now = res.DataStart - cfg.BurstCycles() + 1
				if now < 0 {
					now = 0
				}
			}
			now++
		}
		// Bursts may be slotted out of decision order (gap filling), but
		// they must never overlap.
		sort.Slice(slots, func(a, b int) bool { return slots[a].start < slots[b].start })
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("data bus double-booked: %v", err)
	}
}

func TestChannelThroughputBoundedByBus(t *testing.T) {
	// Back-to-back row hits must sustain at most one line per BurstCycles.
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	const n = 1000
	now := int64(0)
	for i := 0; i < n; i++ {
		ch.Service(now, 0, 0)
		now = ch.BankReadyAt(0) // greedy issue: one column command per tCCD
	}
	elapsed := ch.BusFreeAt()
	minCycles := int64(n) * cfg.BurstCycles()
	if elapsed < minCycles {
		t.Errorf("served %d lines in %d cycles, below bus-limited minimum %d", n, elapsed, minCycles)
	}
	// Streaming hits should be near the bound (within first-access setup).
	if elapsed > minCycles+cfg.Timing.RCD+cfg.Timing.CL+10 {
		t.Errorf("streaming hits took %d cycles, want ≈ %d", elapsed, minCycles)
	}
}

func TestChannelUtilization(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	if got := ch.Utilization(0); got != 0 {
		t.Errorf("utilization at t=0 = %v, want 0", got)
	}
	res := ch.Service(0, 0, 0)
	u := ch.Utilization(res.Done)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want in (0,1]", u)
	}
}

func TestChannelReset(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	ch.Service(0, 3, 9)
	ch.Reset()
	if ch.BusFreeAt() != 0 || ch.BusyCycles != 0 {
		t.Errorf("after Reset: BusFreeAt=%d BusyCycles=%d, want 0,0", ch.BusFreeAt(), ch.BusyCycles)
	}
	for i := range ch.Banks {
		if ch.Banks[i].OpenRow != RowClosed {
			t.Errorf("bank %d open row = %d after Reset, want closed", i, ch.Banks[i].OpenRow)
		}
	}
	if ch.WouldHit(3, 9) {
		t.Error("WouldHit reports hit after Reset")
	}
}
