// Package dram models the DRAM subsystem of a heterogeneous shared-memory
// SoC: channel/bank/row geometry, DDR timing, address mapping, and per-bank
// row-buffer state.
//
// The model is deliberately at the granularity that matters for the PCCS
// paper's characterization (MICRO'21, §2.3): bank conflicts, row-buffer hits
// versus misses, and data-bus occupancy per channel. It does not model
// refresh, rank-to-rank turnaround, or write-to-read turnaround; those
// second-order effects shift absolute bandwidth by a few percent but do not
// change the contention phenomenology the slowdown model is built on.
package dram

import (
	"fmt"
	"math/bits"
)

// Timing holds DRAM timing parameters expressed in memory-controller clock
// cycles (one cycle per I/O bus clock; data moves on both edges, DDR).
type Timing struct {
	// CL is the CAS latency: cycles from column read command to first data.
	CL int64
	// RCD is the RAS-to-CAS delay: cycles from row activate to column command.
	RCD int64
	// RP is the row-precharge time: cycles to close an open row.
	RP int64
	// RAS is the minimum time a row must stay open after activation.
	RAS int64
	// REFI is the refresh interval: every REFI cycles the channel spends
	// RFC cycles refreshing, during which no command may issue. Zero
	// disables refresh modeling (the default for the platform presets —
	// refresh costs a few percent of bandwidth uniformly and does not
	// change the contention phenomenology; the ablation-refresh experiment
	// quantifies it).
	REFI int64
	// RFC is the refresh cycle time (see REFI).
	RFC int64
}

// WithRefresh returns a copy of the timing with refresh enabled at the
// given interval and duration.
func (t Timing) WithRefresh(refi, rfc int64) Timing {
	t.REFI, t.RFC = refi, rfc
	return t
}

// DDR4_3200 is the timing preset used by the paper's memory-controller
// simulation (Table 1: "DDR4-3200 timing parameter"). Values follow the
// JEDEC DDR4-3200AA speed bin (22-22-22) at a 1600 MHz clock.
func DDR4_3200() Timing { return Timing{CL: 22, RCD: 22, RP: 22, RAS: 52} }

// LPDDR4X_2133 is the timing preset for the LPDDR4x-4266 devices found on
// the NVIDIA Jetson AGX Xavier and the Snapdragon 855 (2133 MHz clock).
// LPDDR4x has longer core timings relative to its I/O clock than DDR4.
func LPDDR4X_2133() Timing { return Timing{CL: 36, RCD: 39, RP: 42, RAS: 90} }

// Config describes the geometry and speed of a DRAM subsystem.
//
// The subsystem has Channels independent channels, each with its own command
// and data bus. Lines (LineBytes each) are interleaved across channels so
// that streaming traffic uses all channels evenly, matching the channel
// interleaving used on Xavier-class SoCs (§5 of the paper).
type Config struct {
	Name            string
	Channels        int     // number of independent channels (power of two)
	BanksPerChannel int     // banks per channel (power of two)
	RowBytes        int     // row-buffer size per bank, in bytes
	LineBytes       int     // transfer granularity, in bytes (typically 64)
	ClockMHz        float64 // I/O bus clock in MHz (DDR: 2 transfers/cycle)
	BusBytes        int     // data-bus width per channel, in bytes
	Timing          Timing
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || bits.OnesCount(uint(c.Channels)) != 1:
		return fmt.Errorf("dram: channels must be a positive power of two, got %d", c.Channels)
	case c.BanksPerChannel <= 0 || bits.OnesCount(uint(c.BanksPerChannel)) != 1:
		return fmt.Errorf("dram: banks per channel must be a positive power of two, got %d", c.BanksPerChannel)
	case c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("dram: line bytes must be a positive power of two, got %d", c.LineBytes)
	case c.RowBytes < c.LineBytes || c.RowBytes%c.LineBytes != 0:
		return fmt.Errorf("dram: row bytes (%d) must be a multiple of line bytes (%d)", c.RowBytes, c.LineBytes)
	case c.BusBytes <= 0:
		return fmt.Errorf("dram: bus bytes must be positive, got %d", c.BusBytes)
	case c.ClockMHz <= 0:
		return fmt.Errorf("dram: clock must be positive, got %v", c.ClockMHz)
	case c.Timing.CL <= 0 || c.Timing.RCD <= 0 || c.Timing.RP <= 0:
		return fmt.Errorf("dram: timing parameters must be positive: %+v", c.Timing)
	}
	if c.LineBytes/(2*c.BusBytes) < 1 {
		return fmt.Errorf("dram: line (%dB) smaller than one DDR beat pair (%dB)", c.LineBytes, 2*c.BusBytes)
	}
	return nil
}

// BurstCycles is the number of bus-clock cycles the data bus is occupied by
// one line transfer: LineBytes moved at 2×BusBytes per cycle (DDR).
func (c Config) BurstCycles() int64 {
	return int64(c.LineBytes / (2 * c.BusBytes))
}

// LinesPerRow is the number of transfer lines held by one open row.
func (c Config) LinesPerRow() int { return c.RowBytes / c.LineBytes }

// CyclesPerSecond converts the clock into controller cycles per second.
func (c Config) CyclesPerSecond() float64 { return c.ClockMHz * 1e6 }

// ChannelPeakBytesPerSec is the theoretical data-bus bandwidth of a single
// channel in bytes per second.
func (c Config) ChannelPeakBytesPerSec() float64 {
	return c.CyclesPerSecond() * 2 * float64(c.BusBytes)
}

// PeakBytesPerSec is the theoretical peak bandwidth of the whole subsystem.
func (c Config) PeakBytesPerSec() float64 {
	return c.ChannelPeakBytesPerSec() * float64(c.Channels)
}

// PeakGBps is PeakBytesPerSec expressed in GB/s (1e9 bytes).
func (c Config) PeakGBps() float64 { return c.PeakBytesPerSec() / 1e9 }

// Scale returns a copy of the configuration with the I/O clock multiplied by
// ratio, emulating the incremental memory-frequency changes discussed in
// §3.3 of the paper (linear bandwidth scaling across SoC generations).
func (c Config) Scale(ratio float64) Config {
	s := c
	s.ClockMHz *= ratio
	s.Name = fmt.Sprintf("%s@x%.3g", c.Name, ratio)
	return s
}

// XavierLPDDR4X is the memory subsystem of the virtual Jetson AGX Xavier:
// 8 × 32-bit LPDDR4x channels at 2133 MHz — 136.5 GB/s theoretical peak,
// matching Table 6 of the paper.
func XavierLPDDR4X() Config {
	return Config{
		Name:            "xavier-lpddr4x",
		Channels:        8,
		BanksPerChannel: 16, // dual-rank: 2 ranks × 8 banks
		RowBytes:        4096,
		LineBytes:       64,
		ClockMHz:        2133,
		BusBytes:        4,
		Timing:          LPDDR4X_2133(),
	}
}

// SnapdragonLPDDR4X is the memory subsystem of the virtual Snapdragon 855:
// 2 × 32-bit LPDDR4x channels at 2133 MHz — 34.1 GB/s theoretical peak
// (Table 6 lists a 64-bit interface at 34 GB/s).
func SnapdragonLPDDR4X() Config {
	return Config{
		Name:            "snapdragon-lpddr4x",
		Channels:        2,
		BanksPerChannel: 16, // dual-rank: 2 ranks × 8 banks
		RowBytes:        4096,
		LineBytes:       64,
		ClockMHz:        2133,
		BusBytes:        4,
		Timing:          LPDDR4X_2133(),
	}
}

// CMPDDR4 is the memory subsystem of the paper's memory-controller study
// (Table 1): DDR4-3200, 4 channels, 64-bit wide each, 8 banks, 4 KB rows,
// 102.4 GB/s theoretical peak.
func CMPDDR4() Config {
	return Config{
		Name:            "cmp-ddr4-3200",
		Channels:        4,
		BanksPerChannel: 8,
		RowBytes:        4096,
		LineBytes:       64,
		ClockMHz:        1600,
		BusBytes:        8,
		Timing:          DDR4_3200(),
	}
}
