package dram

import "testing"

func cfgWithRefresh() Config {
	c := CMPDDR4()
	// DDR4 at 1600 MHz controller clock: tREFI ≈ 7.8 µs ≈ 12480 cycles,
	// tRFC ≈ 350 ns ≈ 560 cycles.
	c.Timing = c.Timing.WithRefresh(12480, 560)
	return c
}

func TestRefreshWindowBlocksCommands(t *testing.T) {
	cfg := cfgWithRefresh()
	ch := NewChannel(cfg)
	// A command issued inside the first refresh window is pushed past it.
	res := ch.Service(100, 0, 0) // cycle 100 < RFC 560 → refreshing
	if res.DataStart < 560 {
		t.Errorf("data at %d, want ≥ RFC end 560", res.DataStart)
	}
	// A command between windows proceeds normally.
	res2 := ch.Service(2000, 1, 0)
	if res2.DataStart > 2000+cfg.Timing.RCD+cfg.Timing.CL+cfg.BurstCycles() {
		t.Errorf("inter-refresh command delayed to %d", res2.DataStart)
	}
}

func TestRefreshPeriodicity(t *testing.T) {
	cfg := cfgWithRefresh()
	ch := NewChannel(cfg)
	// Second refresh window starts at REFI.
	at := cfg.Timing.REFI + 10
	res := ch.Service(at, 0, 0)
	if res.DataStart < cfg.Timing.REFI+cfg.Timing.RFC {
		t.Errorf("command at %d landed in the second refresh window (data %d)", at, res.DataStart)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	for _, cfg := range []Config{XavierLPDDR4X(), SnapdragonLPDDR4X(), CMPDDR4()} {
		if cfg.Timing.REFI != 0 || cfg.Timing.RFC != 0 {
			t.Errorf("%s: refresh enabled in preset", cfg.Name)
		}
	}
	ch := NewChannel(CMPDDR4())
	if got := ch.afterRefresh(123); got != 123 {
		t.Errorf("afterRefresh with refresh disabled = %d, want identity", got)
	}
}

func TestRefreshCostsBandwidth(t *testing.T) {
	// Streaming throughput with refresh enabled must be lower, by roughly
	// RFC/REFI (≈4.5% here).
	run := func(cfg Config) int64 {
		ch := NewChannel(cfg)
		now := int64(0)
		for i := 0; i < 20000; i++ {
			ch.Service(now, 0, 0)
			now = ch.BankReadyAt(0)
		}
		return ch.BusFreeAt()
	}
	plain := run(CMPDDR4())
	refreshed := run(cfgWithRefresh())
	if refreshed <= plain {
		t.Fatalf("refresh made streaming faster: %d vs %d", refreshed, plain)
	}
	overhead := float64(refreshed-plain) / float64(plain)
	if overhead < 0.02 || overhead > 0.10 {
		t.Errorf("refresh overhead %.1f%%, want ≈ tRFC/tREFI (4.5%%)", overhead*100)
	}
}
