package dram

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property tests for the data-bus reservation calendar.

func TestReserveNeverOverlapsProperty(t *testing.T) {
	cfg := CMPDDR4()
	f := func(earliests []uint16) bool {
		ch := NewChannel(cfg)
		burst := cfg.BurstCycles()
		type slot struct{ start, end int64 }
		var slots []slot
		base := int64(0)
		for _, e := range earliests {
			// Earliest times wander forward with bounded jitter, like real
			// data-ready times across banks.
			base += int64(e % 16)
			earliest := base + int64(e%256)
			start := ch.reserve(earliest, burst)
			if start < earliest {
				return false // reservation before data is ready
			}
			slots = append(slots, slot{start, start + burst})
		}
		sort.Slice(slots, func(a, b int) bool { return slots[a].start < slots[b].start })
		for i := 1; i < len(slots); i++ {
			if slots[i].start < slots[i-1].end {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("calendar overlap: %v", err)
	}
}

func TestReserveFillsGaps(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	burst := cfg.BurstCycles()
	// Book a far-future slot, then a near-term one: the near-term booking
	// must land before the far-future slot, not after it.
	far := ch.reserve(1000, burst)
	near := ch.reserve(10, burst)
	if near >= far {
		t.Errorf("gap not filled: near-term slot at %d, far slot at %d", near, far)
	}
	// A second near-term booking packs right behind the first.
	near2 := ch.reserve(10, burst)
	if near2 != near+burst {
		t.Errorf("second slot at %d, want %d (back to back)", near2, near+burst)
	}
}

func TestReservePrunesHistory(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	burst := cfg.BurstCycles()
	for i := int64(0); i < 10000; i++ {
		ch.reserve(i*burst, burst)
	}
	if n := len(ch.resv); n > 512 {
		t.Errorf("calendar grew to %d entries; pruning broken", n)
	}
}

func TestBacklogGateCountsOnlyPending(t *testing.T) {
	cfg := CMPDDR4()
	ch := NewChannel(cfg)
	burst := cfg.BurstCycles()
	for i := int64(0); i < 20; i++ {
		ch.reserve(i*burst, burst)
	}
	// All 20 slots are in the past relative to now = 20*burst.
	now := 20 * burst
	if gate := ch.BacklogGate(4, now); gate != 0 {
		t.Errorf("gate over played-out slots = %d, want 0", gate)
	}
	// Book 6 future slots; with maxAhead 4 the gate must bind.
	for i := int64(0); i < 6; i++ {
		ch.reserve(now+100+i*burst, burst)
	}
	if gate := ch.BacklogGate(4, now); gate <= now {
		t.Errorf("gate with 6 pending slots = %d, want in the future", gate)
	}
	if gate := ch.BacklogGate(10, now); gate != 0 {
		t.Errorf("gate with only 6 pending of 10 allowed = %d, want 0", gate)
	}
}
