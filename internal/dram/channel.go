package dram

// Channel models one DRAM channel: a set of banks behind a shared data bus.
//
// The data bus is slot-scheduled: each line transfer reserves a burst-length
// slot at or after its data-ready time, filling earlier gaps left by
// long-latency accesses (precharge+activate) of other banks. This is what
// lets bank-level parallelism hide row-cycle bubbles, as in real
// controllers; booking the bus strictly in decision order would let a
// single conflicting request idle the bus for a full row cycle.
type Channel struct {
	cfg   Config
	Banks []Bank
	// resv holds the outstanding data-bus reservations, sorted by start,
	// non-overlapping. Entries ending before the pruning horizon are
	// dropped as time advances.
	resv []busSlot
	// BusyCycles accumulates data-bus occupancy, for utilization statistics.
	BusyCycles int64
}

type busSlot struct{ start, end int64 }

// NewChannel builds a channel in the reset state.
func NewChannel(cfg Config) *Channel {
	ch := &Channel{cfg: cfg, Banks: make([]Bank, cfg.BanksPerChannel)}
	ch.Reset()
	return ch
}

// Reset closes every row and frees the bus.
func (ch *Channel) Reset() {
	for i := range ch.Banks {
		ch.Banks[i].Reset()
	}
	ch.resv = ch.resv[:0]
	ch.BusyCycles = 0
}

// WouldHit reports whether accessing row in bank would be a row-buffer hit,
// without changing state. Schedulers use it to rank queued requests.
func (ch *Channel) WouldHit(bank int, row int64) bool {
	return ch.Banks[bank].OpenRow == row
}

// BankReadyAt reports when the bank can accept its next command.
func (ch *Channel) BankReadyAt(bank int) int64 { return ch.Banks[bank].ReadyAt }

// BusFreeAt reports the end of the latest data-bus reservation — the
// horizon the controller's decision lookahead is measured against.
func (ch *Channel) BusFreeAt() int64 {
	if len(ch.resv) == 0 {
		return 0
	}
	return ch.resv[len(ch.resv)-1].end
}

// BacklogGate returns the cycle at which fewer than maxAhead reservations
// remain outstanding beyond now: the end of the maxAhead-th still-pending
// reservation from the tail, or 0 when fewer are pending. The controller
// paces its decisions by this gate so the scheduler always works against a
// populated queue (reordering needs standing candidates) without one
// far-future conflict booking stalling decision-making. All reservations
// share one burst length, so ends are monotone in start order and the
// backward scan can stop at the first played-out slot.
func (ch *Channel) BacklogGate(maxAhead int, now int64) int64 {
	cnt := 0
	for i := len(ch.resv) - 1; i >= 0; i-- {
		if ch.resv[i].end <= now {
			break
		}
		cnt++
		if cnt == maxAhead {
			return ch.resv[i].end
		}
	}
	return 0
}

// reserve books the first burst-length slot starting at or after earliest,
// filling gaps between existing reservations, and prunes slots that ended
// before the horizon (earliest minus one row cycle, so late bookings behind
// the horizon remain collision-checked).
func (ch *Channel) reserve(earliest, burst int64) int64 {
	// Prune: keep slots ending after a safety horizon well before
	// earliest; anything older can no longer collide with new bookings
	// because data-ready times never move backwards by more than a row
	// cycle relative to the decision clock.
	t := ch.cfg.Timing
	horizon := earliest - 4*(t.RAS+t.RP+t.RCD+t.CL)
	keep := 0
	for _, s := range ch.resv {
		if s.end > horizon {
			ch.resv[keep] = s
			keep++
		}
	}
	ch.resv = ch.resv[:keep]

	start := earliest
	for i := 0; i < len(ch.resv); i++ {
		s := ch.resv[i]
		if start+burst <= s.start {
			// Fits in the gap before slot i.
			ch.resv = append(ch.resv, busSlot{})
			copy(ch.resv[i+1:], ch.resv[i:])
			ch.resv[i] = busSlot{start, start + burst}
			return start
		}
		if s.end > start {
			start = s.end
		}
	}
	ch.resv = append(ch.resv, busSlot{start, start + burst})
	return start
}

// ServiceResult describes the outcome of servicing one line transfer.
type ServiceResult struct {
	Kind AccessKind
	// DataStart is the cycle at which the burst begins on the data bus.
	DataStart int64
	// Done is the cycle at which the last beat of data has transferred;
	// the request completes (and the requester is notified) at Done.
	Done int64
}

// Service performs one line access at cycle now: bank timing via the bank
// state machine, then data-bus slot reservation (the burst takes the first
// free slot at or after data-ready). It returns the completion schedule.
func (ch *Channel) Service(now int64, bank int, row int64) ServiceResult {
	now = ch.afterRefresh(now)
	burst := ch.cfg.BurstCycles()
	kind, colCmdAt := ch.Banks[bank].Access(now, row, ch.cfg.Timing, burst)
	colCmdAt = ch.afterRefresh(colCmdAt)
	dataReady := colCmdAt + ch.cfg.Timing.CL
	dataStart := ch.reserve(dataReady, burst)
	done := dataStart + burst
	ch.BusyCycles += burst
	return ServiceResult{Kind: kind, DataStart: dataStart, Done: done}
}

// afterRefresh pushes a command time out of any refresh window: every REFI
// cycles the channel refreshes for RFC cycles during which no command may
// issue. A no-op when refresh modeling is disabled (REFI == 0).
func (ch *Channel) afterRefresh(at int64) int64 {
	t := ch.cfg.Timing
	if t.REFI <= 0 || t.RFC <= 0 {
		return at
	}
	if off := at % t.REFI; off < t.RFC {
		return at - off + t.RFC
	}
	return at
}

// Utilization is the fraction of cycles in [0, now) the data bus was busy.
func (ch *Channel) Utilization(now int64) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(ch.BusyCycles) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}
