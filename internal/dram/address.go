package dram

// Loc identifies the physical location of one line-sized transfer.
type Loc struct {
	Channel int
	Bank    int
	Row     int64
	Col     int // line index within the row
}

// Mapper translates flat physical addresses to DRAM locations and back.
//
// The mapping interleaves consecutive lines across channels (so streaming
// traffic spreads over every channel, as on Xavier-class SoCs), then across
// columns of a row, and applies an XOR fold of the row bits into the bank
// index — the "XOR-based address-to-bank mapping" of the paper's Table 1 —
// so that strided traffic does not camp on a single bank.
type Mapper struct {
	channels    int
	banks       int
	linesPerRow int
	lineBytes   int
}

// NewMapper builds a Mapper for the configuration. The configuration must
// have been validated; geometry fields are assumed to be powers of two.
func NewMapper(c Config) *Mapper {
	return &Mapper{
		channels:    c.Channels,
		banks:       c.BanksPerChannel,
		linesPerRow: c.LinesPerRow(),
		lineBytes:   c.LineBytes,
	}
}

// Decode maps a byte address to the location of the line containing it.
func (m *Mapper) Decode(addr int64) Loc {
	line := addr / int64(m.lineBytes)
	ch := int(line % int64(m.channels))
	rest := line / int64(m.channels)
	col := int(rest % int64(m.linesPerRow))
	rest = rest / int64(m.linesPerRow)
	rawBank := int(rest % int64(m.banks))
	row := rest / int64(m.banks)
	bank := (rawBank ^ int(row%int64(m.banks))) & (m.banks - 1)
	return Loc{Channel: ch, Bank: bank, Row: row, Col: col}
}

// Encode maps a location back to the byte address of the start of its line.
// Encode is the inverse of Decode for line-aligned addresses.
func (m *Mapper) Encode(l Loc) int64 {
	rawBank := (l.Bank ^ int(l.Row%int64(m.banks))) & (m.banks - 1)
	rest := l.Row*int64(m.banks) + int64(rawBank)
	rest = rest*int64(m.linesPerRow) + int64(l.Col)
	line := rest*int64(m.channels) + int64(l.Channel)
	return line * int64(m.lineBytes)
}
