package simrun

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
)

// PanicError is a recovered panic converted into an error: the panicking
// computation (a simulation point, a calibration job) fails, the rest of
// the process keeps running, and the original value plus the stack at the
// panic site survive for diagnosis.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As, so injected panics
// (whose value wraps faultinject.ErrInjected) classify as transient.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Recovered wraps a recover() value into a *PanicError with the current
// stack. Call it only with a non-nil recover result.
func Recovered(rec any) *PanicError {
	return &PanicError{Value: rec, Stack: debug.Stack()}
}

// Transient reports whether an error is worth retrying: injected chaos
// faults (including injected panics) are transient; deterministic model and
// simulation errors, and context cancellation, are not — retrying them
// would reproduce the same failure.
func Transient(err error) bool {
	return errors.Is(err, faultinject.ErrInjected)
}

// RetryPolicy bounds the executor's retries of transiently failing points:
// capped exponential backoff with jitter. The zero value disables retries
// (one attempt per point).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per point, including the
	// first; values < 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay seeds the backoff ladder (default 1ms when retries are on).
	BaseDelay time.Duration
	// MaxDelay caps the ladder (default 250ms).
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the executor policy the daemon runs with: a few
// quick attempts, enough to shrug off injected chaos without stretching a
// genuinely failing sweep.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 250 * time.Millisecond}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the sleep before attempt n+1 (n counts completed
// attempts, starting at 1): base·2^(n−1) capped at MaxDelay, scaled by a
// uniform jitter in [0.5, 1.5).
func (p RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base << (n - 1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64())) //pccs:allow-nodeterminism backoff jitter paces wall-clock retries; it never touches simulated state or results
}
