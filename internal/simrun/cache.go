package simrun

import (
	"context"
	"fmt"
	"sync"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Cache memoizes standalone measurements keyed on the physical simulation
// inputs: platform identity, PU, kernel spec, and RunConfig. Standalone
// points are the most re-measured runs in the stack — calib.Sweep measures
// every calibrator alone, RelativeSpeeds re-measures the same kernels, and
// the experiment harness probes the same standalone references across
// figures — so one shared cache removes whole columns of redundant
// simulation. Concurrent requests for the same key coalesce: one runs, the
// rest wait for its result.
type Cache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry // guarded by mu
}

type cacheEntry struct {
	once sync.Once
	res  soc.PUResult
	err  error
}

// NewCache builds an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*cacheEntry)}
}

// standaloneKey identifies a standalone run by everything that shapes its
// outcome: the backend's physics fingerprint, the PU, the kernel spec, and
// the window. The kernel name is deliberately excluded — the traffic
// generator seeds from (platform seed, PU index) only, so
// identically-specced kernels with different labels are the same
// measurement.
func standaloneKey(b soc.Backend, pu int, k soc.Kernel, rc soc.RunConfig) string {
	return fmt.Sprintf("%s|pu%d|%g/%d/%d/%d|%d+%d",
		b.Fingerprint(),
		pu, k.DemandGBps, k.RunLines, k.Outstanding, k.Streams,
		rc.WarmupCycles, rc.MeasureCycles)
}

// Standalone returns the memoized standalone measurement of kernel k on PU
// pu of backend b, running the simulation on a backend clone the first
// time the point is seen. Failed runs are not cached; the returned result
// carries the caller's kernel name.
func (c *Cache) Standalone(ctx context.Context, b soc.Backend, pu int, k soc.Kernel, rc soc.RunConfig) (soc.PUResult, error) {
	key := standaloneKey(b, pu, k, rc)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// A panic inside once.Do would mark the entry done with a zero
		// result and nil error — silent corruption for every coalesced
		// waiter. Convert it to an error so the entry fails (and is
		// dropped for retry) instead.
		defer func() {
			if rec := recover(); rec != nil {
				e.res, e.err = soc.PUResult{}, Recovered(rec)
			}
		}()
		e.res, e.err = soc.StandaloneOn(ctx, b.CloneBackend(), pu, k, rc)
	})
	if e.err != nil {
		// Drop the entry so a later call (e.g. after a cancelled run)
		// retries instead of replaying the failure forever.
		c.mu.Lock()
		if c.m[key] == e {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return soc.PUResult{}, e.err
	}
	res := e.res
	res.Kernel = k.Name
	return res, nil
}

// Len reports the number of memoized measurements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
