package simrun

import (
	"context"
	"sync"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// RelativeSpeeds is the executor-backed replacement for
// soc.Platform.RelativeSpeeds: it measures the placement's co-run and every
// placed kernel's standalone reference and fills each result's
// RelativeSpeed with achieved-corun / achieved-standalone. The standalone
// probes go through the memo cache — repeated placements of the same
// kernels (validation sweeps, pressure ladders) stop re-measuring them —
// and all runs proceed concurrently. Results are identical to the serial
// method.
func RelativeSpeeds(ctx context.Context, e *Executor, b soc.Backend, pl soc.Placement, rc soc.RunConfig) (map[int]soc.PUResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		alone = make(map[int]float64, len(pl))
		first error
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}

	// The co-run is independent of the standalone references, so every run
	// proceeds concurrently; the memoized probes usually return instantly.
	var co *soc.RunOutcome
	wg.Add(1)
	go func() {
		defer wg.Done()
		out, err := b.CloneBackend().RunContext(ctx, pl, rc)
		if err != nil {
			fail(err)
			return
		}
		co = out
	}()
	// Initialize every key before spawning: the probe goroutines write into
	// alone under mu, so the bare alone[pu] = 0 writes must all happen first.
	for pu := range pl {
		alone[pu] = 0
	}
	for pu, k := range pl {
		if k.DemandGBps == 0 {
			continue
		}
		wg.Add(1)
		go func(pu int, k soc.Kernel) {
			defer wg.Done()
			res, err := e.Cache.Standalone(ctx, b, pu, k, rc)
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			alone[pu] = res.AchievedGBps
			mu.Unlock()
		}(pu, k)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}

	for pu, res := range co.Results {
		if alone[pu] > 0 {
			res.RelativeSpeed = res.AchievedGBps / alone[pu]
			if res.RelativeSpeed > 1 {
				res.RelativeSpeed = 1
			}
		} else {
			res.RelativeSpeed = 1
		}
		co.Results[pu] = res
	}
	return co.Results, nil
}
