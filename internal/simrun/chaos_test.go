package simrun

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// chaosRetry is an aggressive test policy: enough attempts to outlast any
// plausible injected-fault streak, with microsecond backoff so tests stay
// fast.
var chaosRetry = RetryPolicy{MaxAttempts: 25, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}

// TestExecuteChaosMatchesFaultFree injects errors and panics into the point
// site and asserts the surviving results are bit-identical to a fault-free
// run: retried points are pure computations on fresh clones.
func TestExecuteChaosMatchesFaultFree(t *testing.T) {
	p := soc.VirtualXavier()
	points := testPlan(p)

	want, err := New(2).Execute(context.Background(), p, points)
	if err != nil {
		t.Fatal(err)
	}

	e := New(2)
	e.Faults = faultinject.MustNew(7,
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Error, Rate: 0.3},
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Panic, Rate: 0.2},
	)
	e.Retry = chaosRetry
	got, err := e.Execute(context.Background(), p, points)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("point %d failed under chaos: %v", i, got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Outcome, want[i].Outcome) {
			t.Errorf("point %d: chaos outcome differs from fault-free run", i)
		}
	}
	if e.Faults.Injected() == 0 {
		t.Fatal("no faults fired; chaos test vacuous")
	}
	if e.Retries() == 0 {
		t.Error("faults fired but no retries recorded")
	}
}

// TestStandaloneBatchChaosMatchesFaultFree is the same property for the
// standalone site and its memo cache.
func TestStandaloneBatchChaosMatchesFaultFree(t *testing.T) {
	p := soc.VirtualXavier()
	kernels := []soc.Kernel{
		{Name: "a", DemandGBps: 25},
		{Name: "b", DemandGBps: 60},
		{Name: "c", DemandGBps: 95},
	}
	want, err := New(2).StandaloneBatch(context.Background(), p, 1, kernels, testRC)
	if err != nil {
		t.Fatal(err)
	}

	e := New(2)
	e.Faults = faultinject.MustNew(11,
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Error, Rate: 0.4},
		faultinject.Rule{Site: "simrun/standalone", Kind: faultinject.Panic, Rate: 0.2},
	)
	e.Retry = chaosRetry
	got, err := e.StandaloneBatch(context.Background(), p, 1, kernels, testRC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("chaos standalone batch diverged\ngot:  %+v\nwant: %+v", got, want)
	}
	if e.Faults.Injected() == 0 {
		t.Fatal("no faults fired; chaos test vacuous")
	}
}

// TestPanicFailsOnlyAffectedPoint disables retries and asserts an injected
// panic is confined to one point: its Result carries a *PanicError with a
// stack, every other point still succeeds, and the executor survives.
func TestPanicFailsOnlyAffectedPoint(t *testing.T) {
	p := soc.VirtualXavier()
	points := testPlan(p)
	e := New(2)
	e.Faults = faultinject.MustNew(1,
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Panic, Rate: 1, Count: 1},
	)
	results, err := e.Execute(context.Background(), p, points)
	if err != nil {
		t.Fatal(err)
	}
	var failed int
	for i, res := range results {
		if res.Err == nil {
			continue
		}
		failed++
		var pe *PanicError
		if !errors.As(res.Err, &pe) {
			t.Errorf("point %d: err %T, want *PanicError", i, res.Err)
		} else if len(pe.Stack) == 0 {
			t.Errorf("point %d: panic error lost its stack", i)
		}
		if !Transient(res.Err) {
			t.Errorf("point %d: injected panic not classified transient", i)
		}
	}
	if failed != 1 {
		t.Errorf("%d points failed, want exactly 1 (count-capped panic)", failed)
	}
	if e.Retries() != 0 {
		t.Errorf("retries = %d with zero-value policy, want 0", e.Retries())
	}
}

// TestDeterministicErrorsNotRetried asserts real model errors (not injected
// chaos) fail immediately: retrying a deterministic failure only repeats it.
func TestDeterministicErrorsNotRetried(t *testing.T) {
	p := soc.VirtualXavier()
	e := New(1)
	e.Retry = chaosRetry
	results, err := e.Execute(context.Background(), p, []Point{
		{Placement: soc.Placement{99: soc.Kernel{Name: "bad", DemandGBps: 30}}, Run: testRC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("out-of-range placement succeeded")
	}
	if Transient(results[0].Err) {
		t.Errorf("model error classified transient: %v", results[0].Err)
	}
	if e.Retries() != 0 {
		t.Errorf("deterministic error retried %d times", e.Retries())
	}
}

// TestRetryExhaustionSurfacesInjectedError asserts a site that always fails
// eventually gives up and surfaces the injected error after MaxAttempts.
func TestRetryExhaustionSurfacesInjectedError(t *testing.T) {
	p := soc.VirtualXavier()
	e := New(1)
	e.Faults = faultinject.MustNew(3,
		faultinject.Rule{Site: "simrun/point", Kind: faultinject.Error, Rate: 1},
	)
	e.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond}
	results, err := e.Execute(context.Background(), p, []Point{
		{Placement: soc.Placement{1: soc.Kernel{Name: "k", DemandGBps: 30}}, Run: testRC},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", results[0].Err)
	}
	if e.Retries() != 2 {
		t.Errorf("retries = %d, want 2 (3 attempts)", e.Retries())
	}
}

func TestBackoffCappedAndJittered(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}
	for n := 1; n < 70; n++ { // far past the shift-overflow point
		d := pol.backoff(n)
		if d < 0 || d >= time.Duration(1.5*float64(8*time.Millisecond)) {
			t.Fatalf("backoff(%d) = %s out of [0, 12ms)", n, d)
		}
	}
}
