// Package simrun is the shared concurrent simulation executor every layer
// of the stack (calib sweeps, experiments, the pccsd job queue, the CLIs)
// runs its discrete-event simulations through. Model construction is the
// expensive step of the PCCS methodology — a calibrator × external-demand
// grid where every point is a full co-run simulation — and the points are
// independent pure computations, so the executor fans them out over a
// worker pool while keeping the results deterministic: each point runs on
// its own backend clone with the backend's own seed, and results are
// reassembled in plan order, so parallel output is bit-identical to a
// serial loop over the same points.
package simrun

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Point is one independent simulation of a run plan.
type Point struct {
	Placement soc.Placement
	Run       soc.RunConfig
}

// Chaos sites armed by an Executor's fault injector.
const (
	// SitePoint fires before each simulation point attempt.
	SitePoint = "simrun/point"
	// SiteStandalone fires before each standalone (solo-run) measurement.
	SiteStandalone = "simrun/standalone"
)

// Result is the outcome of one point, in plan order.
type Result struct {
	Outcome *soc.RunOutcome
	Err     error
}

// Executor runs plans of independent simulation points on a fixed-size
// worker pool. An Executor is safe for concurrent use; its memo cache and
// progress counters are shared across every plan it executes, so layered
// callers (a sweep inside a construction inside a job) see one cumulative
// completed/planned progress stream and one standalone-run cache.
type Executor struct {
	workers int

	// Cache memoizes standalone measurements across plans (see Cache).
	Cache *Cache

	// OnProgress, when set, is called after every completed point with the
	// executor's cumulative completed and planned point counts. It is
	// invoked concurrently from worker goroutines and must be safe for
	// concurrent use.
	OnProgress func(completed, planned int)

	// Faults, when set, arms the executor's chaos sites (SitePoint,
	// SiteStandalone). Set it before the first Execute call.
	Faults *faultinject.Injector

	// Retry re-runs transiently failing points (see Transient) with capped
	// exponential backoff. The zero value disables retries. Set it before
	// the first Execute call.
	Retry RetryPolicy

	completed atomic.Int64
	planned   atomic.Int64
	retries   atomic.Int64
	abandoned atomic.Int64
}

// New builds an executor with the given pool size; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{workers: workers, Cache: NewCache()}
}

// Workers reports the pool size.
func (e *Executor) Workers() int { return e.workers }

// Progress reports the cumulative completed and planned point counts.
func (e *Executor) Progress() (completed, planned int) {
	return int(e.completed.Load()), int(e.planned.Load())
}

// Retries reports the cumulative number of point re-attempts.
func (e *Executor) Retries() int { return int(e.retries.Load()) }

// Abandoned reports the cumulative number of points skipped without running
// because their context had already ended — the observable proof that a
// cancelled or deadline-expired caller stops simulation work instead of
// merely discarding its result.
func (e *Executor) Abandoned() int { return int(e.abandoned.Load()) }

// plan registers upcoming points so progress totals grow before work starts.
func (e *Executor) plan(n int) {
	planned := e.planned.Add(int64(n))
	if e.OnProgress != nil {
		e.OnProgress(int(e.completed.Load()), int(planned))
	}
}

// complete records one finished point.
func (e *Executor) complete() {
	done := e.completed.Add(1)
	if e.OnProgress != nil {
		e.OnProgress(int(done), int(e.planned.Load()))
	}
}

// Execute runs every point of the plan on backend b and returns results in
// plan order. Per-point failures are reported in the matching Result; the
// returned error is non-nil only when ctx was cancelled, in which case
// not-yet-started points carry ctx.Err(). A nil ctx means Background.
func (e *Executor) Execute(ctx context.Context, b soc.Backend, points []Point) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(points))
	e.plan(len(points))
	workers := e.workers
	if workers > len(points) {
		workers = len(points)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			clone := b.CloneBackend()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					e.abandoned.Add(1)
					e.complete()
					continue
				}
				out, err := e.runPoint(ctx, b, &clone, points[i])
				results[i] = Result{Outcome: out, Err: err}
				e.complete()
			}
		}()
	}
	wg.Wait()
	return results, ctx.Err()
}

// runPoint runs one point with panic isolation and the retry policy. A
// panic inside the simulation fails only this point (converted to a
// *PanicError with the stack); transient failures — injected chaos faults —
// are re-attempted up to Retry.MaxAttempts with capped jittered backoff.
// The worker's platform clone is replaced after a panic, since a panicking
// simulation may leave it mid-run; points are independent pure
// computations, so a retry on a fresh clone reproduces the exact result a
// fault-free run would have produced.
func (e *Executor) runPoint(ctx context.Context, b soc.Backend, clone *soc.Backend, pt Point) (*soc.RunOutcome, error) {
	attempts := e.Retry.attempts()
	for attempt := 1; ; attempt++ {
		out, err := e.attemptPoint(ctx, *clone, pt)
		if err == nil {
			return out, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			*clone = b.CloneBackend()
		}
		if !Transient(err) || attempt >= attempts || ctx.Err() != nil {
			return nil, err
		}
		e.retries.Add(1)
		if serr := sleepCtx(ctx, e.Retry.backoff(attempt)); serr != nil {
			return nil, serr
		}
	}
}

// attemptPoint is one try at a point: hit the chaos site, run the
// simulation, convert panics to errors.
func (e *Executor) attemptPoint(ctx context.Context, clone soc.Backend, pt Point) (out *soc.RunOutcome, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			out, err = nil, Recovered(rec)
		}
	}()
	if ferr := e.Faults.Hit(SitePoint); ferr != nil {
		return nil, ferr
	}
	return clone.RunContext(ctx, pt.Placement, pt.Run)
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StandaloneBatch measures each kernel running alone on the PU, fanning the
// misses out over the pool and serving repeats from the memo cache. Results
// are in kernel order; the first failure aborts with a named error.
func (e *Executor) StandaloneBatch(ctx context.Context, b soc.Backend, pu int, kernels []soc.Kernel, rc soc.RunConfig) ([]soc.PUResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]soc.PUResult, len(kernels))
	errs := make([]error, len(kernels))
	e.plan(len(kernels))
	workers := e.workers
	if workers > len(kernels) {
		workers = len(kernels)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(kernels) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					e.abandoned.Add(1)
					e.complete()
					continue
				}
				results[i], errs[i] = e.runStandalone(ctx, b, pu, kernels[i], rc)
				e.complete()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simrun: standalone %s: %w", kernels[i].Name, err)
		}
	}
	return results, nil
}

// runStandalone is runPoint for a standalone measurement: chaos site,
// panic isolation, and retries around the memo-cached run. Failed runs are
// never cached, so a retry re-measures; a cache hit after an injected fault
// returns the already-memoized (bit-identical) result.
func (e *Executor) runStandalone(ctx context.Context, b soc.Backend, pu int, k soc.Kernel, rc soc.RunConfig) (soc.PUResult, error) {
	attempts := e.Retry.attempts()
	for attempt := 1; ; attempt++ {
		res, err := e.attemptStandalone(ctx, b, pu, k, rc)
		if err == nil {
			return res, nil
		}
		if !Transient(err) || attempt >= attempts || ctx.Err() != nil {
			return soc.PUResult{}, err
		}
		e.retries.Add(1)
		if serr := sleepCtx(ctx, e.Retry.backoff(attempt)); serr != nil {
			return soc.PUResult{}, serr
		}
	}
}

func (e *Executor) attemptStandalone(ctx context.Context, b soc.Backend, pu int, k soc.Kernel, rc soc.RunConfig) (res soc.PUResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = soc.PUResult{}, Recovered(rec)
		}
	}()
	if ferr := e.Faults.Hit(SiteStandalone); ferr != nil {
		return soc.PUResult{}, ferr
	}
	return e.Cache.Standalone(ctx, b, pu, k, rc)
}
