package simrun

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

var testRC = soc.RunConfig{WarmupCycles: 50_000, MeasureCycles: 100_000}

// testPlan builds a small mixed plan on the Xavier: standalone points and
// co-runs at several demand levels.
func testPlan(p *soc.Platform) []Point {
	var points []Point
	for _, d := range []float64{20, 60, 100} {
		points = append(points, Point{
			Placement: soc.Placement{1: soc.Kernel{Name: "k", DemandGBps: d}},
			Run:       testRC,
		})
		points = append(points, Point{
			Placement: soc.Placement{
				1: soc.Kernel{Name: "k", DemandGBps: d},
				0: soc.ExternalPressure(40),
			},
			Run: testRC,
		})
	}
	return points
}

func TestExecuteMatchesSerial(t *testing.T) {
	p := soc.VirtualXavier()
	points := testPlan(p)

	serial := make([]*soc.RunOutcome, len(points))
	for i, pt := range points {
		out, err := p.Run(pt.Placement, pt.Run)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = out
	}

	e := New(4)
	parallel, err := e.Execute(context.Background(), p, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range parallel {
		if res.Err != nil {
			t.Fatalf("point %d: %v", i, res.Err)
		}
		if !reflect.DeepEqual(res.Outcome, serial[i]) {
			t.Errorf("point %d: parallel outcome differs from serial\nparallel: %+v\nserial:   %+v",
				i, res.Outcome, serial[i])
		}
	}
}

func TestExecuteReportsPointErrors(t *testing.T) {
	p := soc.VirtualXavier()
	points := []Point{
		{Placement: soc.Placement{1: soc.Kernel{Name: "ok", DemandGBps: 30}}, Run: testRC},
		{Placement: soc.Placement{99: soc.Kernel{Name: "bad", DemandGBps: 30}}, Run: testRC},
	}
	results, err := New(2).Execute(context.Background(), p, points)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Outcome == nil {
		t.Errorf("good point failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("out-of-range placement succeeded")
	}
}

func TestExecuteCancellation(t *testing.T) {
	p := soc.VirtualXavier()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	results, err := New(2).Execute(ctx, p, testPlan(p))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled execute took %s", elapsed)
	}
	for i, res := range results {
		if res.Err == nil {
			t.Errorf("point %d ran despite cancelled context", i)
		}
	}
}

func TestCacheDedupesEquivalentKernels(t *testing.T) {
	p := soc.VirtualXavier()
	c := NewCache()
	a, err := c.Standalone(context.Background(), p, 1, soc.Kernel{Name: "first", DemandGBps: 50}, testRC)
	if err != nil {
		t.Fatal(err)
	}
	// Same physical spec, different label: must hit the cache and carry the
	// caller's name.
	b, err := c.Standalone(context.Background(), p, 1, soc.Kernel{Name: "second", DemandGBps: 50}, testRC)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("cache has %d entries, want 1", c.Len())
	}
	if a.AchievedGBps != b.AchievedGBps {
		t.Errorf("cached result diverged: %v vs %v", a.AchievedGBps, b.AchievedGBps)
	}
	if a.Kernel != "first" || b.Kernel != "second" {
		t.Errorf("kernel labels = %q, %q", a.Kernel, b.Kernel)
	}
	// A different window is a different measurement.
	if _, err := c.Standalone(context.Background(), p, 1, soc.Kernel{Name: "first", DemandGBps: 50},
		soc.RunConfig{WarmupCycles: 50_000, MeasureCycles: 150_000}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("cache has %d entries, want 2", c.Len())
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	p := soc.VirtualXavier()
	c := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Standalone(ctx, p, 1, soc.Kernel{Name: "k", DemandGBps: 50}, testRC); err == nil {
		t.Fatal("cancelled standalone succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("failure cached: %d entries", c.Len())
	}
	if _, err := c.Standalone(context.Background(), p, 1, soc.Kernel{Name: "k", DemandGBps: 50}, testRC); err != nil {
		t.Fatalf("retry after cancelled run: %v", err)
	}
}

func TestProgressCounters(t *testing.T) {
	p := soc.VirtualXavier()
	e := New(4)
	var mu sync.Mutex
	var last [2]int
	e.OnProgress = func(done, planned int) {
		mu.Lock()
		defer mu.Unlock()
		last = [2]int{done, planned}
	}
	points := testPlan(p)
	if _, err := e.Execute(context.Background(), p, points); err != nil {
		t.Fatal(err)
	}
	done, planned := e.Progress()
	if done != len(points) || planned != len(points) {
		t.Errorf("Progress = %d/%d, want %d/%d", done, planned, len(points), len(points))
	}
	mu.Lock()
	if last != [2]int{len(points), len(points)} {
		t.Errorf("final OnProgress = %v", last)
	}
	mu.Unlock()
}

func TestRelativeSpeedsMatchesSerial(t *testing.T) {
	p := soc.VirtualXavier()
	pl := soc.Placement{
		0: soc.Kernel{Name: "cpu", DemandGBps: 40},
		1: soc.Kernel{Name: "gpu", DemandGBps: 90},
	}
	want, err := p.RelativeSpeeds(pl, testRC)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RelativeSpeeds(context.Background(), New(4), p, pl, testRC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel RelativeSpeeds diverged\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestExecutorRaceStress hammers one executor (and its shared cache) from
// several plans at once; it exists to run under -race in CI.
func TestExecutorRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	p := soc.VirtualXavier()
	rc := soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 30_000}
	e := New(4)
	e.OnProgress = func(done, planned int) { _ = done + planned }
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var points []Point
			for i := 0; i < 4; i++ {
				points = append(points, Point{
					Placement: soc.Placement{
						1: soc.Kernel{Name: "k", DemandGBps: 20 + 10*float64(i)},
						0: soc.ExternalPressure(30),
					},
					Run: rc,
				})
			}
			if _, err := e.Execute(context.Background(), p, points); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
			kernels := []soc.Kernel{
				{Name: "a", DemandGBps: 25},
				{Name: "b", DemandGBps: 25}, // dedupes onto "a"'s entry
				{Name: "c", DemandGBps: 45},
			}
			if _, err := e.StandaloneBatch(context.Background(), p, 1, kernels, rc); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
}
