// Package platform is the registry of simulation backends: every platform
// the stack can calibrate, predict, schedule, and experiment on, selectable
// by name from the CLIs (-platform) and the /v1/* request bodies. The
// default virtual SoCs share the registry with the extended families —
// chiplet (die-to-die link contention), multi-core NPU (tile-granular
// phases), and PIM (in-memory demand that bypasses the MC) — so adding a
// platform is one Register call, not a switch statement per layer.
package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Factory describes one registered platform and builds fresh backends for
// it. New must return an independent instance on every call: callers clone
// and mutate freely, and two sessions must never share state through the
// registry.
type Factory struct {
	// Name is the registry key ("virtual-xavier", "pim-xavier", ...); the
	// built backend's PlatformName must match it.
	Name string
	// Family groups related platforms ("virtual-soc", "chiplet", "npu",
	// "pim").
	Family string
	// Description is one human-readable line for listings.
	Description string
	// New builds a fresh, independent backend.
	New func() soc.Backend
}

var (
	mu sync.RWMutex
	// factories is the registry. guarded by mu.
	factories = map[string]Factory{}
)

// Register adds a factory; it panics on a duplicate or incomplete entry,
// like the workload and experiment registries — registration is init-time
// wiring, and a half-registered platform is a programming error.
func Register(f Factory) {
	if f.Name == "" || f.New == nil {
		panic("platform: Register needs a name and a constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[f.Name]; dup {
		panic(fmt.Sprintf("platform: duplicate registration of %q", f.Name))
	}
	factories[f.Name] = f
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := factories[name]
	return f, ok
}

// Get builds a fresh backend for the named platform. The error lists the
// registered names so a typo in a request or flag is self-diagnosing.
func Get(name string) (soc.Backend, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f.New(), nil
}

// Names lists the registered platform names, sorted, so every listing —
// /v1/models, CLI help, error messages — is deterministic.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List returns the registered factories sorted by name.
func List() []Factory {
	names := Names()
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Factory, 0, len(names))
	for _, name := range names {
		out = append(out, factories[name])
	}
	return out
}

func init() {
	Register(Factory{
		Name:        "virtual-xavier",
		Family:      "virtual-soc",
		Description: "virtual NVIDIA Jetson AGX Xavier: CPU + GPU + DLA over 137 GB/s LPDDR4x",
		New:         func() soc.Backend { return soc.VirtualXavier() },
	})
	Register(Factory{
		Name:        "virtual-snapdragon",
		Family:      "virtual-soc",
		Description: "virtual Qualcomm Snapdragon 855: CPU + GPU over 34 GB/s LPDDR4x",
		New:         func() soc.Backend { return soc.VirtualSnapdragon() },
	})
	Register(Factory{
		Name:        "cmp16-tcm",
		Family:      "virtual-soc",
		Description: "16-core CMP over DDR4-3200 with TCM fairness control (paper Table 1)",
		New: func() soc.Backend {
			// The preset names itself after the policy's display form
			// ("cmp16-TCM"); registry names are lowercase.
			p := soc.CMP16(memctrl.TCM)
			p.Name = "cmp16-tcm"
			return p
		},
	})
	Register(Factory{
		Name:        "chiplet-dual",
		Family:      "chiplet",
		Description: "chiplet SoC: CPU+GPU die and DLA die behind die-to-die links to the memory die",
		New:         func() soc.Backend { return ChipletDual() },
	})
	Register(Factory{
		Name:        "virtual-npu",
		Family:      "npu",
		Description: "multi-core NPU SoC: CPU + 2 NPU cores with tile-granular phase workloads",
		New:         func() soc.Backend { return VirtualNPU() },
	})
	Register(Factory{
		Name:        "pim-xavier",
		Family:      "pim",
		Description: "PIM-enabled Xavier: a per-PU fraction of demand is served in-memory, bypassing the MC",
		New:         func() soc.Backend { return PIMXavier() },
	})
}
