package platform

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/sched"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/traffic"
)

// tinyRC keeps the cross-backend determinism sims fast; determinism does
// not depend on window length.
var tinyRC = soc.RunConfig{WarmupCycles: 20_000, MeasureCycles: 60_000}

// newBackends returns the three extended platform families the refactor
// introduces; every determinism guarantee the default backend carries must
// hold on each of them.
func newBackends(t *testing.T) []soc.Backend {
	t.Helper()
	var bs []soc.Backend
	for _, name := range []string{"chiplet-dual", "virtual-npu", "pim-xavier"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
	}
	return bs
}

// TestSweepParallelSerialBitIdentity runs the same small calibration sweep
// serially and on an 8-worker pool on each new backend: the reassembled
// matrices must be bit-identical (the simrun plan-order guarantee, now a
// cross-backend contract).
func TestSweepParallelSerialBitIdentity(t *testing.T) {
	for _, b := range newBackends(t) {
		b := b
		t.Run(b.PlatformName(), func(t *testing.T) {
			t.Parallel()
			arch := b.PUList()[1]
			cfg := calib.SweepConfig{
				TargetPU:   1,
				PressurePU: 0,
				Calibrators: []traffic.Spec{
					{Name: "cal-a", DemandGBps: 18, Outstanding: arch.Outstanding, RunLines: arch.RunLines, Streams: arch.Streams},
					{Name: "cal-b", DemandGBps: 55, Outstanding: arch.Outstanding, RunLines: arch.RunLines, Streams: arch.Streams},
				},
				ExtGBps: []float64{20, 70},
				Run:     tinyRC,
			}
			serial, err := calib.SweepContext(context.Background(), simrun.New(1), b, cfg)
			if err != nil {
				t.Fatalf("serial sweep: %v", err)
			}
			parallel, err := calib.SweepContext(context.Background(), simrun.New(8), b, cfg)
			if err != nil {
				t.Fatalf("parallel sweep: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel sweep diverged from serial:\nserial   %+v\nparallel %+v", serial, parallel)
			}
		})
	}
}

// TestSameSeedSameSchedule solves the same batch twice on each new backend
// with the same seed but different worker counts: the chosen schedule must
// be identical — scheduling decisions are a pure function of (models,
// backend, items, seed).
func TestSameSeedSameSchedule(t *testing.T) {
	for _, b := range newBackends(t) {
		b := b
		t.Run(b.PlatformName(), func(t *testing.T) {
			t.Parallel()
			models := calib.ModelSet{}
			for _, pu := range b.PUList() {
				models.Put(core.Params{
					PU: pu.Name, Platform: b.PlatformName(), Backend: soc.BackendFamilyOf(b),
					NormalBW: 20, IntensiveBW: 60, MRMC: 12, CBP: 45,
					TBWDC: 110, RateN: 0.6, PeakBW: b.PeakGBps(),
				})
			}
			var items []sched.Item
			for i, d := range []float64{12, 34, 56, 72, 28, 44} {
				items = append(items, sched.Item{ID: fmt.Sprintf("it%d", i), DemandGBps: d})
			}
			solve := func(workers int) *sched.Schedule {
				s, err := sched.Solve(context.Background(), models, b, items,
					sched.Options{Objective: sched.Makespan, Seed: 7, Workers: workers})
				if err != nil {
					t.Fatalf("solve(workers=%d): %v", workers, err)
				}
				return s
			}
			a, c := solve(1), solve(4)
			if !reflect.DeepEqual(a, c) {
				t.Errorf("same-seed schedules diverged:\n1 worker  %+v\n4 workers %+v", a, c)
			}
		})
	}
}
