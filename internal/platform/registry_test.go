package platform

import (
	"reflect"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// TestRegistryGoldenListing pins the sorted registry listing: serving
// responses, CLI help, and error messages all print it, so an accidental
// registration (or a lost one) must fail loudly here.
func TestRegistryGoldenListing(t *testing.T) {
	want := []string{
		"chiplet-dual",
		"cmp16-tcm",
		"pim-xavier",
		"virtual-npu",
		"virtual-snapdragon",
		"virtual-xavier",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("registry listing drifted:\n got  %v\n want %v", got, want)
	}
	for i, f := range List() {
		if f.Name != Names()[i] {
			t.Errorf("List()[%d] = %q, want %q", i, f.Name, Names()[i])
		}
	}
}

func TestEveryRegisteredPlatformIsCoherent(t *testing.T) {
	for _, f := range List() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			b, err := Get(f.Name)
			if err != nil {
				t.Fatal(err)
			}
			if b.PlatformName() != f.Name {
				t.Errorf("backend names itself %q, registered as %q", b.PlatformName(), f.Name)
			}
			if err := b.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if b.PeakGBps() <= 0 {
				t.Errorf("peak %g", b.PeakGBps())
			}
			if len(b.PUList()) == 0 {
				t.Error("no PUs")
			}
			if soc.BackendFamilyOf(b) != f.Family {
				t.Errorf("backend family %q, registered %q", soc.BackendFamilyOf(b), f.Family)
			}
			// New must hand out independent instances.
			b2, _ := Get(f.Name)
			if b == b2 {
				t.Error("Get returned the same instance twice")
			}
			// Clones must share no PU slice with the original.
			c := b.CloneBackend()
			if c.Fingerprint() != b.Fingerprint() {
				t.Errorf("clone fingerprint %q != %q", c.Fingerprint(), b.Fingerprint())
			}
		})
	}

	if _, err := Get("no-such-platform"); err == nil {
		t.Error("Get accepted an unknown platform")
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, f Factory) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(f)
	}
	mustPanic("duplicate", Factory{Name: "virtual-xavier", New: func() soc.Backend { return soc.VirtualXavier() }})
	mustPanic("no constructor", Factory{Name: "half-registered"})
	mustPanic("no name", Factory{New: func() soc.Backend { return soc.VirtualXavier() }})
}
