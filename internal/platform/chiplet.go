package platform

import (
	"context"
	"fmt"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Chiplet is a backend that layers a die-to-die interconnect contention
// stage in front of the shared DRAM/MC model (CHIPSIM-style): PUs live on
// compute dies, and every memory request from a die crosses a
// fixed-bandwidth link to the memory die before reaching the controller.
// Slowdown therefore composes from two contention points — co-runners on
// the *same* die contend on their link even when the memory controller has
// headroom, which the processor-centric calibration (pressure from another
// die) cannot see.
//
// The link stage is a deterministic fluid model: when a die's total demand
// exceeds its link bandwidth, every kernel on the die is throttled
// proportionally before entering the DRAM simulation, and each result's
// reported latency gains a hop term that grows with link occupancy.
type Chiplet struct {
	// Base is the underlying DRAM/MC platform; its Name names the whole
	// chiplet system.
	Base *soc.Platform
	// Dies[i] is the die hosting PU i (an index into LinkGBps).
	Dies []int
	// LinkGBps[d] is die d's link bandwidth to the memory die in GB/s;
	// 0 means the die is the memory die itself (no link hop).
	LinkGBps []float64
	// LinkHopCycles is the base latency of one die crossing; the effective
	// hop latency scales with link occupancy.
	LinkHopCycles float64
}

var _ soc.Backend = (*Chiplet)(nil)

// ChipletDual is the registered "chiplet-dual" preset: the Xavier compute
// complex split across two compute dies — CPU+GPU behind a 96 GB/s link,
// the DLA behind a narrower 32 GB/s link — in front of the Xavier memory
// system.
func ChipletDual() *Chiplet {
	base := soc.VirtualXavier()
	base.Name = "chiplet-dual"
	base.Seed = 4
	return &Chiplet{
		Base:          base,
		Dies:          []int{0, 0, 1},
		LinkGBps:      []float64{96, 32},
		LinkHopCycles: 40,
	}
}

// PlatformName implements soc.Backend.
func (c *Chiplet) PlatformName() string { return c.Base.Name }

// PUList implements soc.Backend.
func (c *Chiplet) PUList() []soc.PU { return c.Base.PUs }

// PeakGBps implements soc.Backend.
func (c *Chiplet) PeakGBps() float64 { return c.Base.PeakGBps() }

// BackendFamily identifies the chiplet family.
func (c *Chiplet) BackendFamily() string { return "chiplet" }

// Validate implements soc.Backend.
func (c *Chiplet) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if len(c.Dies) != len(c.Base.PUs) {
		return fmt.Errorf("chiplet %s: %d die assignments for %d PUs", c.Base.Name, len(c.Dies), len(c.Base.PUs))
	}
	for i, d := range c.Dies {
		if d < 0 || d >= len(c.LinkGBps) {
			return fmt.Errorf("chiplet %s: PU %d on die %d, have %d dies", c.Base.Name, i, d, len(c.LinkGBps))
		}
	}
	for d, bw := range c.LinkGBps {
		if bw < 0 {
			return fmt.Errorf("chiplet %s: die %d link bandwidth %g negative", c.Base.Name, d, bw)
		}
	}
	if c.LinkHopCycles < 0 {
		return fmt.Errorf("chiplet %s: negative link hop latency", c.Base.Name)
	}
	return nil
}

// CloneBackend implements soc.Backend.
func (c *Chiplet) CloneBackend() soc.Backend {
	return &Chiplet{
		Base:          c.Base.Clone(),
		Dies:          append([]int(nil), c.Dies...),
		LinkGBps:      append([]float64(nil), c.LinkGBps...),
		LinkHopCycles: c.LinkHopCycles,
	}
}

// Fingerprint implements soc.Backend: the link topology shapes results, so
// it extends the base platform identity.
func (c *Chiplet) Fingerprint() string {
	return fmt.Sprintf("chiplet|%s|dies%v|links%v|hop%g",
		c.Base.Fingerprint(), c.Dies, c.LinkGBps, c.LinkHopCycles)
}

// RunContext implements soc.Backend: throttle each die's kernels through
// its link, run the DRAM/MC co-run on the throttled demands, then restore
// the nominal demands and charge the hop latency.
func (c *Chiplet) RunContext(ctx context.Context, pl soc.Placement, rc soc.RunConfig) (*soc.RunOutcome, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Placements are maps; accumulate die loads in sorted PU order so the
	// floating-point sums (and thus the results) never depend on map order.
	pus := make([]int, 0, len(pl))
	for pu := range pl {
		pus = append(pus, pu)
	}
	sort.Ints(pus)
	for _, pu := range pus {
		if pu < 0 || pu >= len(c.Dies) {
			return nil, fmt.Errorf("chiplet %s: placement names PU %d, platform has %d", c.Base.Name, pu, len(c.Dies))
		}
	}

	load := make([]float64, len(c.LinkGBps))
	for _, pu := range pus {
		load[c.Dies[pu]] += pl[pu].DemandGBps
	}
	scaled := make(soc.Placement, len(pl))
	for _, pu := range pus {
		k := pl[pu]
		if bw := c.LinkGBps[c.Dies[pu]]; bw > 0 && load[c.Dies[pu]] > bw {
			k.DemandGBps *= bw / load[c.Dies[pu]]
		}
		scaled[pu] = k
	}

	out, err := c.Base.RunContext(ctx, scaled, rc)
	if err != nil {
		return nil, err
	}
	for _, pu := range pus {
		res := out.Results[pu]
		res.DemandGBps = pl[pu].DemandGBps
		if bw := c.LinkGBps[c.Dies[pu]]; bw > 0 && res.AchievedGBps > 0 {
			// One hop each way, stretched linearly by link occupancy: a
			// saturated link doubles the crossing cost.
			occ := load[c.Dies[pu]] / bw
			if occ > 1 {
				occ = 1
			}
			res.MeanLatencyCycles += c.LinkHopCycles * (1 + occ)
		}
		out.Results[pu] = res
	}
	return out, nil
}
