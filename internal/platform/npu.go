package platform

import (
	"github.com/processorcentricmodel/pccs/internal/dram"
	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// VirtualNPU is the registered "virtual-npu" preset: a host CPU plus a
// two-core neural processing unit sharing the Xavier-class LPDDR4x memory
// system. Each NPU core is an independent PU — multi-tenant inference
// co-locates models on different cores, which is exactly the contention
// scenario PCCS prices — with MLP between the DLA's (too little to hide
// latency) and the GPU's (enough to hide almost anything), and long
// sequential runs from tile streaming.
//
// NPU workloads are tile-granular multi-phase profiles (ONNXim-style):
// weight-tile loads, on-chip compute, and activation writeback alternate
// at very different bandwidth demands, so the phase machinery (§3.2's
// multi-phase treatment) is the natural representation — see the
// npu-*-tiles workloads in internal/workload.
func VirtualNPU() *soc.Platform {
	return &soc.Platform{
		Name:   "virtual-npu",
		Family: "npu",
		Mem:    dram.XavierLPDDR4X(),
		Policy: memctrl.TCM,
		Seed:   6,
		PUs: []soc.PU{
			{Name: "CPU", Kind: soc.CPU, Outstanding: 128, RunLines: 128, Streams: 8, MaxFreqMHz: 2100},
			{Name: "NPU0", Kind: soc.NPU, Outstanding: 96, RunLines: 384, Streams: 4, MaxFreqMHz: 1200},
			{Name: "NPU1", Kind: soc.NPU, Outstanding: 96, RunLines: 384, Streams: 4, MaxFreqMHz: 1200},
		},
	}
}
