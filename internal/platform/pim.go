package platform

import (
	"context"
	"fmt"
	"sort"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// PIM is a backend with processing-in-memory support (LP5X-PIM-style): a
// configurable fraction of each PU's bandwidth demand is served by compute
// inside the DRAM dies and never crosses the memory controller. Only the
// residual (1-fraction) demand enters the shared MC/DRAM contention point;
// the offloaded share draws from a separate in-memory bandwidth pool that
// is shared proportionally when oversubscribed.
//
// PIM deliberately breaks the assumption PCCS is built on. The model is
// *source-oblivious*: it predicts a kernel's slowdown from the total
// external demand y without asking where y goes. On a PIM platform a
// co-runner with a high offload fraction presents y GB/s of nominal demand
// but only (1-f)·y of MC pressure, so a model calibrated with a
// zero-offload pressure PU systematically *overpredicts* slowdown — the
// documented finding the ext-backends experiment quantifies.
type PIM struct {
	// Base is the underlying DRAM/MC platform; its Name names the PIM
	// system.
	Base *soc.Platform
	// OffloadFrac[i] is the fraction of PU i's demand served in-memory,
	// in [0,1]. Zero means the PU cannot use PIM.
	OffloadFrac []float64
	// PIMGBps is the in-memory compute bandwidth pool shared by all
	// offloaded demand.
	PIMGBps float64
	// PIMLatencyCycles is the flat service latency of an in-memory
	// request; the reported per-PU latency blends it with the measured MC
	// latency by served share.
	PIMLatencyCycles float64
}

var _ soc.Backend = (*PIM)(nil)

// PIMXavier is the registered "pim-xavier" preset: the Xavier platform
// with a 64 GB/s in-memory compute pool. Only the DLA's tensor traffic is
// PIM-amenable (60% of it offloads); CPU and GPU traffic always crosses
// the MC. That split makes the DLA the interesting pressure source: its
// observed bandwidth overstates its MC footprint, which is exactly where
// the ext-backends experiment shows PCCS overpredicting.
func PIMXavier() *PIM {
	base := soc.VirtualXavier()
	base.Name = "pim-xavier"
	base.Seed = 5
	return &PIM{
		Base:             base,
		OffloadFrac:      []float64{0, 0, 0.6},
		PIMGBps:          64,
		PIMLatencyCycles: 60,
	}
}

// PlatformName implements soc.Backend.
func (p *PIM) PlatformName() string { return p.Base.Name }

// PUList implements soc.Backend.
func (p *PIM) PUList() []soc.PU { return p.Base.PUs }

// PeakGBps implements soc.Backend: the ceiling external sweeps push
// toward is the MC path; the PIM pool is extra headroom behind it.
func (p *PIM) PeakGBps() float64 { return p.Base.PeakGBps() }

// BackendFamily identifies the PIM family.
func (p *PIM) BackendFamily() string { return "pim" }

// Validate implements soc.Backend.
func (p *PIM) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if len(p.OffloadFrac) != len(p.Base.PUs) {
		return fmt.Errorf("pim %s: %d offload fractions for %d PUs", p.Base.Name, len(p.OffloadFrac), len(p.Base.PUs))
	}
	for i, f := range p.OffloadFrac {
		if f < 0 || f > 1 {
			return fmt.Errorf("pim %s: PU %d offload fraction %g outside [0,1]", p.Base.Name, i, f)
		}
	}
	if p.PIMGBps <= 0 {
		return fmt.Errorf("pim %s: in-memory bandwidth %g not positive", p.Base.Name, p.PIMGBps)
	}
	if p.PIMLatencyCycles < 0 {
		return fmt.Errorf("pim %s: negative in-memory latency", p.Base.Name)
	}
	return nil
}

// CloneBackend implements soc.Backend.
func (p *PIM) CloneBackend() soc.Backend {
	return &PIM{
		Base:             p.Base.Clone(),
		OffloadFrac:      append([]float64(nil), p.OffloadFrac...),
		PIMGBps:          p.PIMGBps,
		PIMLatencyCycles: p.PIMLatencyCycles,
	}
}

// Fingerprint implements soc.Backend.
func (p *PIM) Fingerprint() string {
	return fmt.Sprintf("pim|%s|frac%v|pool%g|lat%g",
		p.Base.Fingerprint(), p.OffloadFrac, p.PIMGBps, p.PIMLatencyCycles)
}

// RunContext implements soc.Backend: split each kernel's demand into the
// MC-bound residual and the in-memory share, run the DRAM/MC co-run on the
// residuals, then add back the in-memory bandwidth (proportionally scaled
// if the pool is oversubscribed) and blend the latencies.
func (p *PIM) RunContext(ctx context.Context, pl soc.Placement, rc soc.RunConfig) (*soc.RunOutcome, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pus := make([]int, 0, len(pl))
	for pu := range pl {
		pus = append(pus, pu)
	}
	sort.Ints(pus)
	for _, pu := range pus {
		if pu < 0 || pu >= len(p.OffloadFrac) {
			return nil, fmt.Errorf("pim %s: placement names PU %d, platform has %d", p.Base.Name, pu, len(p.OffloadFrac))
		}
	}

	// Offloaded demand per PU, and the pool's proportional-share scale.
	inMem := make(map[int]float64, len(pl))
	var total float64
	for _, pu := range pus {
		x := pl[pu].DemandGBps * p.OffloadFrac[pu]
		inMem[pu] = x
		total += x
	}
	scale := 1.0
	if total > p.PIMGBps {
		scale = p.PIMGBps / total
	}

	scaled := make(soc.Placement, len(pl))
	for _, pu := range pus {
		k := pl[pu]
		k.DemandGBps -= inMem[pu]
		scaled[pu] = k
	}
	out, err := p.Base.RunContext(ctx, scaled, rc)
	if err != nil {
		return nil, err
	}

	var pimServed float64
	for _, pu := range pus {
		res := out.Results[pu]
		res.DemandGBps = pl[pu].DemandGBps
		served := inMem[pu] * scale
		pimServed += served
		if mc := res.AchievedGBps; mc+served > 0 {
			// Blend latency by served share; a PU running entirely
			// in-memory sees the flat PIM latency.
			res.MeanLatencyCycles = (res.MeanLatencyCycles*mc + p.PIMLatencyCycles*served) / (mc + served)
		}
		res.AchievedGBps += served
		out.Results[pu] = res
	}
	out.EffectiveGBps += pimServed
	return out, nil
}
