package platform

import (
	"context"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/soc"
)

// TestChipletLinkIsASecondContentionPoint: two kernels on the same die
// whose combined demand exceeds the die link must be throttled even though
// the memory controller has plenty of headroom, and must see the inflated
// hop latency. The same kernels on the plain base platform are not.
func TestChipletLinkIsASecondContentionPoint(t *testing.T) {
	c := ChipletDual()
	// CPU (PU 0) and GPU (PU 1) share die 0's 96 GB/s link; 70+70 GB/s
	// oversubscribes it while staying far below the 137 GB/s DRAM peak.
	pl := soc.Placement{
		0: soc.Kernel{Name: "a", DemandGBps: 70},
		1: soc.Kernel{Name: "b", DemandGBps: 70},
	}
	out, err := c.RunContext(context.Background(), pl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Base.RunContext(context.Background(), pl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	for pu := 0; pu <= 1; pu++ {
		got, ref := out.Results[pu], base.Results[pu]
		if got.AchievedGBps >= ref.AchievedGBps*0.90 {
			t.Errorf("PU %d: link-throttled %.1f GB/s not below base %.1f (140 GB/s through a 96 GB/s link)",
				pu, got.AchievedGBps, ref.AchievedGBps)
		}
		if got.DemandGBps != 70 {
			t.Errorf("PU %d: nominal demand rewritten to %g", pu, got.DemandGBps)
		}
	}

	// An under-subscribed link throttles nothing — but still charges the
	// die-crossing latency (same demand, so the MC latencies match).
	soloPl := soc.Placement{0: soc.Kernel{Name: "a", DemandGBps: 40}}
	solo, err := c.RunContext(context.Background(), soloPl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	soloBase, err := c.Base.RunContext(context.Background(), soloPl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	if solo.Results[0].AchievedGBps < 38 {
		t.Errorf("under-subscribed link throttled a 40 GB/s kernel to %.1f", solo.Results[0].AchievedGBps)
	}
	if solo.Results[0].MeanLatencyCycles <= soloBase.Results[0].MeanLatencyCycles {
		t.Errorf("no hop latency charged (%.1f <= %.1f)",
			solo.Results[0].MeanLatencyCycles, soloBase.Results[0].MeanLatencyCycles)
	}
}

// TestPIMOffloadBypassesTheMC: the DLA offloads 60% of its demand
// in-memory, so under heavy GPU pressure it achieves several times its
// MC-granted bandwidth — while the GPU pays nothing for the difference.
// That decoupling of observed bandwidth from MC-visible pressure is
// exactly what breaks source-obliviousness.
func TestPIMOffloadBypassesTheMC(t *testing.T) {
	p := PIMXavier()
	// 130+60 GB/s oversubscribes the 137 GB/s peak, and TCM squeezes the
	// DLA hard; on PIM the in-memory pool serves 36 GB/s untouched by
	// that squeeze.
	pl := soc.Placement{
		1: soc.Kernel{Name: "gpu", DemandGBps: 130},
		2: soc.Kernel{Name: "dla", DemandGBps: 60},
	}
	pim, err := p.RunContext(context.Background(), pl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Base.RunContext(context.Background(), pl, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	// The DLA keeps the offloaded share regardless of MC contention.
	if pim.Results[2].AchievedGBps < base.Results[2].AchievedGBps*3 {
		t.Errorf("DLA on PIM achieved %.1f, want well above base %.1f",
			pim.Results[2].AchievedGBps, base.Results[2].AchievedGBps)
	}
	// ...and the GPU does not pay for it: the DLA's extra achieved
	// bandwidth never crossed the MC.
	if gap := pim.Results[1].AchievedGBps - base.Results[1].AchievedGBps; gap < -2 || gap > 2 {
		t.Errorf("GPU achieved moved by %.1f GB/s (pim %.1f, base %.1f); offloaded traffic should not touch the MC",
			gap, pim.Results[1].AchievedGBps, base.Results[1].AchievedGBps)
	}
	if pim.Results[2].DemandGBps != 60 {
		t.Errorf("nominal DLA demand rewritten to %g", pim.Results[2].DemandGBps)
	}

	// Pool oversubscription shares proportionally: total offload demand
	// beyond PIMGBps cannot be served.
	big := soc.Placement{
		1: soc.Kernel{Name: "gpu", DemandGBps: 130}, // all of it at the MC
		2: soc.Kernel{Name: "dla", DemandGBps: 80},  // 48 in-memory
	}
	out, err := p.RunContext(context.Background(), big, tinyRC)
	if err != nil {
		t.Fatal(err)
	}
	if sum := out.Results[1].AchievedGBps + out.Results[2].AchievedGBps; sum > p.Base.PeakGBps()+p.PIMGBps {
		t.Errorf("served %.1f GB/s, above MC peak + PIM pool %.1f", sum, p.Base.PeakGBps()+p.PIMGBps)
	}
}
