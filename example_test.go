package pccs_test

import (
	"fmt"

	pccs "github.com/processorcentricmodel/pccs"
)

// Predicting a co-run slowdown from a constructed model is a pure
// calculation: no simulation, microseconds per query — the property that
// makes PCCS usable inside design-space-exploration loops.
func ExampleParams_predict() {
	model := pccs.Params{
		PU: "GPU", Platform: "demo",
		NormalBW: 38, IntensiveBW: 96, MRMC: 4.9,
		CBP: 45, TBWDC: 87, RateN: 0.75, PeakBW: 137,
	}
	fmt.Printf("region: %v\n", model.Region(60))
	fmt.Printf("RS at 40 GB/s external: %.1f%%\n", model.Predict(60, 40))
	fmt.Printf("RS beyond the balance point: %.1f%%\n", model.Predict(60, 120))
	// Output:
	// region: normal
	// RS at 40 GB/s external: 90.2%
	// RS beyond the balance point: 86.5%
}

// Multi-phase programs aggregate per-phase predictions by standalone
// execution-time share (§3.2; Fig. 13's accurate variant).
func ExampleParams_predictPhases() {
	model := pccs.Params{
		PU: "GPU", Platform: "demo",
		NormalBW: 38, IntensiveBW: 96, MRMC: 4.9,
		CBP: 45, TBWDC: 87, RateN: 0.75, PeakBW: 137,
	}
	phases := []pccs.Phase{
		{Name: "K1", Weight: 0.3, DemandGBps: 110},
		{Name: "K2", Weight: 0.7, DemandGBps: 60},
	}
	rs, err := model.PredictPhases(phases, 50)
	if err != nil {
		panic(err)
	}
	flat := model.Predict(pccs.AverageDemand(phases), 50)
	fmt.Printf("piece-wise %.1f%% < average-BW %.1f%% (high-BW phase dominates)\n", rs, flat)
	// Output:
	// piece-wise 47.2% < average-BW 75.2% (high-BW phase dominates)
}

// Linear bandwidth scaling retargets a model to an incremental memory
// change without re-calibration (§3.3).
func ExampleParams_scale() {
	model := pccs.Params{
		PU: "GPU", Platform: "demo",
		NormalBW: 38, IntensiveBW: 96, MRMC: 4.9,
		CBP: 45, TBWDC: 87, RateN: 0.75, PeakBW: 137,
	}
	half := model.Scale(0.5) // 2133 MHz → 1066 MHz memory
	fmt.Printf("peak %.1f → %.1f GB/s, TBWDC %.1f → %.1f GB/s\n",
		model.PeakBW, half.PeakBW, model.TBWDC, half.TBWDC)
	// Output:
	// peak 137.0 → 68.5 GB/s, TBWDC 87.0 → 43.5 GB/s
}

// The Gables baseline predicts no slowdown until total demand exceeds the
// peak — the assumption the paper's measurements refute.
func ExampleGables() {
	g, _ := pccs.NewGables(137)
	fmt.Printf("below peak: %.0f%%\n", g.Predict(60, 70))
	fmt.Printf("above peak: %.1f%%\n", g.Predict(100, 100))
	// Output:
	// below peak: 100%
	// above peak: 68.5%
}
