package pccs

import (
	"context"

	"github.com/processorcentricmodel/pccs/internal/sched"
	"github.com/processorcentricmodel/pccs/internal/simrun"
)

// ScheduleItem is one pending workload handed to the scheduler: a
// registered workload name, an explicit multi-phase profile, or a flat
// bandwidth demand, plus optional PU restrictions and SLOs.
type ScheduleItem = sched.Item

// ScheduleOptions tunes the schedule search (objective, seed, workers,
// beam width). The zero value optimizes makespan deterministically.
type ScheduleOptions = sched.Options

// ScheduleObjective selects what the scheduler optimizes.
type ScheduleObjective = sched.Objective

// Schedule objectives.
const (
	// MinMakespan minimizes the predicted completion time of the batch.
	MinMakespan = sched.Makespan
	// MaxThroughput minimizes total busy time burned to contention.
	MaxThroughput = sched.Throughput
	// MaxFairness minimizes the worst per-item slowdown.
	MaxFairness = sched.Fairness
)

// ParseScheduleObjective converts "makespan", "throughput", or "fairness".
func ParseScheduleObjective(s string) (ScheduleObjective, error) {
	return sched.ParseObjective(s)
}

// Schedule is a planned set of co-run waves plus predicted metrics.
type Schedule = sched.Schedule

// WorstCase is the schedule-wide adversarial contention report.
type WorstCase = sched.WorstCase

// ScheduleValidation is the predicted-vs-actual report for a schedule
// replayed through the simulator.
type ScheduleValidation = sched.Validation

// SolveSchedule searches PU assignments, co-run groupings, and launch
// order for a batch of pending workloads, using the PCCS slowdown model as
// the inner-loop cost (§3.4's use case, batch form). Small batches are
// solved exactly; larger ones by seeded beam search. The same inputs,
// options, and seed always yield the same schedule, at any worker count.
func SolveSchedule(ctx context.Context, models ModelSet, p Backend, items []ScheduleItem, opts ScheduleOptions) (*Schedule, error) {
	return sched.Solve(ctx, models, p, items, opts)
}

// ScheduleWorstCase computes, for every assignment of a schedule, the
// largest slowdown any co-runner mix drawn from the batch could inflict,
// plus the model's saturated-memory ceiling. Bounds always dominate the
// schedule's own expected slowdowns.
func ScheduleWorstCase(ctx context.Context, models ModelSet, p Backend, items []ScheduleItem, s *Schedule) (*WorstCase, error) {
	return sched.WorstCaseBounds(ctx, models, p, items, s)
}

// ValidateSchedule replays a schedule wave-by-wave through the simulator
// and reports predicted-vs-actual relative speeds and makespan.
func ValidateSchedule(ctx context.Context, p Backend, s *Schedule, rc RunConfig) (*ScheduleValidation, error) {
	return sched.Validate(ctx, simrun.New(0), p, s, rc)
}
