package pccs_test

// End-to-end integration tests: the shipped models must beat the Gables
// baseline on workloads they were never constructed from, measured against
// the simulator — the paper's headline claim, as a regression test.

import (
	"testing"

	pccs "github.com/processorcentricmodel/pccs"
)

func TestEndToEndPCCSBeatsGablesOnXavierGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy integration test")
	}
	models, err := pccs.LoadModels("models/pccs-models.json")
	if err != nil {
		t.Fatal(err)
	}
	platform := pccs.Xavier()
	model, err := models.Get(platform.Name, "GPU")
	if err != nil {
		t.Fatal(err)
	}
	gb, err := pccs.NewGables(platform.PeakGBps())
	if err != nil {
		t.Fatal(err)
	}
	gpu, cpu := platform.PUIndex("GPU"), platform.PUIndex("CPU")
	rc := pccs.QuickRunConfig()

	var pccsErr, gablesErr float64
	var n int
	for _, name := range []string{"streamcluster", "pathfinder", "srad", "hotspot"} {
		w, err := pccs.GetWorkload(name)
		if err != nil {
			t.Fatal(err)
		}
		demand, err := w.DemandOn(platform.Name, "GPU")
		if err != nil {
			t.Fatal(err)
		}
		for _, ext := range []float64{40, 90, 130} {
			res, err := pccs.MeasureRelativeSpeeds(platform, pccs.Placement{
				gpu: pccs.Kernel{Name: name, DemandGBps: demand, RunLines: w.RunLines},
				cpu: pccs.ExternalPressure(ext),
			}, rc)
			if err != nil {
				t.Fatal(err)
			}
			actual := 100 * res[gpu].RelativeSpeed
			pccsErr += abs(model.Predict(demand, ext) - actual)
			gablesErr += abs(gb.Predict(demand, ext) - actual)
			n++
		}
	}
	pccsErr /= float64(n)
	gablesErr /= float64(n)
	t.Logf("mean |err| over %d points: PCCS %.2f%%, Gables %.2f%%", n, pccsErr, gablesErr)
	if pccsErr >= gablesErr {
		t.Errorf("PCCS (%.2f%%) did not beat Gables (%.2f%%)", pccsErr, gablesErr)
	}
	if pccsErr > 15 {
		t.Errorf("PCCS error %.2f%% implausibly high", pccsErr)
	}
}

func TestEndToEndConstructionPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("construction sweep in -short mode")
	}
	// Construct a fresh model for the Snapdragon GPU with short windows and
	// check it predicts a co-run it never saw within a loose tolerance.
	platform := pccs.Snapdragon()
	rc := pccs.RunConfig{WarmupCycles: 120_000, MeasureCycles: 150_000}
	params, matrix, err := pccs.Construct(platform, platform.PUIndex("GPU"), rc, pccs.DefaultExtractOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := params.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(matrix.StdBW) < 3 {
		t.Fatalf("matrix too small: %d rows", len(matrix.StdBW))
	}
	gpu, cpu := platform.PUIndex("GPU"), platform.PUIndex("CPU")
	const demand, ext = 20, 15 // not a grid point
	res, err := pccs.MeasureRelativeSpeeds(platform, pccs.Placement{
		gpu: pccs.Kernel{Name: "probe", DemandGBps: demand},
		cpu: pccs.ExternalPressure(ext),
	}, rc)
	if err != nil {
		t.Fatal(err)
	}
	actual := 100 * res[gpu].RelativeSpeed
	pred := params.Predict(demand, ext)
	if e := abs(pred - actual); e > 20 {
		t.Errorf("fresh model off-grid error %.1f%% (pred %.1f, actual %.1f)", e, pred, actual)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
