package pccs

import (
	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

// Predictor is any co-run slowdown model (PCCS Params or the Gables
// baseline both satisfy it).
type Predictor = explore.Predictor

// FreqModel is a kernel's standalone performance model across PU clock.
type FreqModel = explore.FreqModel

// Selection is the outcome of a frequency selection.
type Selection = explore.Selection

// SelectFrequency picks the highest frequency whose predicted co-run
// slowdown stays within budget — the §4.3 design question.
func SelectFrequency(pred Predictor, fm FreqModel, extGBps, maxSlowdownPct float64, ladder []float64) (Selection, error) {
	return explore.SelectFrequency(pred, fm, extGBps, maxSlowdownPct, ladder)
}

// FreqLadder builds an ascending frequency ladder.
func FreqLadder(lo, hi, step float64) []float64 { return explore.Ladder(lo, hi, step) }

// Workload is a benchmark surrogate with profiled per-PU demands.
type Workload = workload.Workload

// GetWorkload fetches a benchmark surrogate by name (e.g. "streamcluster",
// "bfs", "resnet50").
func GetWorkload(name string) (*Workload, error) { return workload.Get(name) }

// WorkloadNames lists every registered benchmark surrogate.
func WorkloadNames() []string { return workload.Names() }

// CoreModel is a kernel's standalone performance model across core count.
type CoreModel = explore.CoreModel

// CoreSelection is the outcome of a core-count selection.
type CoreSelection = explore.CoreSelection

// SelectCores picks the smallest core count delivering the target fraction
// of the best achievable co-run performance (§3.4's core-count knob).
func SelectCores(pred Predictor, cm CoreModel, extGBps, targetFrac float64, step int) (CoreSelection, error) {
	return explore.SelectCores(pred, cm, extGBps, targetFrac, step)
}
