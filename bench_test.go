package pccs_test

// The benchmark harness regenerates every paper artifact (one benchmark per
// table/figure, per DESIGN.md's experiment index) plus the ablations.
// Outputs go to io.Discard; run cmd/pccs-experiments to see the tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig8 -v

import (
	"io"
	"testing"

	"github.com/processorcentricmodel/pccs/internal/experiments"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Short simulation windows keep a full -bench=. pass tractable; the
	// cmd/pccs-experiments harness uses the standard windows.
	rc := soc.RunConfig{WarmupCycles: 100_000, MeasureCycles: 100_000}
	ctx, err := experiments.NewContext(io.Discard, "models/pccs-models.json", rc)
	if err != nil {
		b.Fatalf("context: %v", err)
	}
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(ctx); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Characterization (paper §2).

func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }

// Model construction and properties (paper §3).

func BenchmarkTable5(b *testing.B)              { benchExperiment(b, "table5") }
func BenchmarkTable7(b *testing.B)              { benchExperiment(b, "table7") }
func BenchmarkSourceObliviousness(b *testing.B) { benchExperiment(b, "sourceobl") }

// Model validation (paper §4.1, §4.2).

func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)   { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkSummary(b *testing.B) { benchExperiment(b, "summary") }

// Design-space exploration (paper §4.3).

func BenchmarkTable9(b *testing.B)       { benchExperiment(b, "table9") }
func BenchmarkUsecaseCores(b *testing.B) { benchExperiment(b, "usecase-cores") }
func BenchmarkFig15(b *testing.B)        { benchExperiment(b, "fig15") }

// Ablations of the design choices DESIGN.md calls out.

func BenchmarkAblationPiecewise(b *testing.B)   { benchExperiment(b, "ablation-piecewise") }
func BenchmarkAblationExtraction(b *testing.B)  { benchExperiment(b, "ablation-extraction") }
func BenchmarkAblationCalibrators(b *testing.B) { benchExperiment(b, "ablation-calibrators") }
func BenchmarkAblationPolicies(b *testing.B)    { benchExperiment(b, "ablation-policies") }
func BenchmarkAblationRefresh(b *testing.B)     { benchExperiment(b, "ablation-refresh") }

// Extensions (paper §5 discussion).

func BenchmarkExtMultiMC(b *testing.B)   { benchExperiment(b, "ext-multimc") }
func BenchmarkExtDNNPhases(b *testing.B) { benchExperiment(b, "ext-dnnphases") }

// Micro-benchmarks of the hot paths.

func BenchmarkSimulatorCorun(b *testing.B) {
	p := soc.VirtualXavier()
	pl := soc.Placement{
		0: soc.Kernel{Name: "cpu", DemandGBps: 50},
		1: soc.Kernel{Name: "gpu", DemandGBps: 90},
		2: soc.Kernel{Name: "dla", DemandGBps: 20},
	}
	rc := soc.QuickRunConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(pl, rc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	ctx, err := experiments.NewContext(io.Discard, "models/pccs-models.json", soc.QuickRunConfig())
	if err != nil {
		b.Fatal(err)
	}
	m, err := ctx.Models.Get("virtual-xavier", "GPU")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += m.Predict(float64(i%137), float64((i*7)%137))
	}
	_ = sink
}
