# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# steps; `make check` is the local pre-push equivalent.

GO ?= go

.PHONY: build test race lint vet bench fuzz check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# pccs-lint enforces the repo's determinism/concurrency/durability
# invariants (internal/lint). Also usable as `go vet -vettool`; see
# README "Linting".
lint:
	$(GO) run ./cmd/pccs-lint ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPredictDecode$$' -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzCalibrateDecode$$' -fuzztime 10s ./internal/server

check: vet lint build race

clean:
	$(GO) clean ./...
