# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# steps; `make check` is the local pre-push equivalent.

GO ?= go

.PHONY: build test race lint lint-json vet bench bench-json fuzz check clean stress soak sched-demo dst

build:
	$(GO) build ./...

# -shuffle=on randomizes test order each run: the suite must not depend on
# inter-test state, and a failing shuffle seed is printed for replay.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -shuffle=on -race ./...

# pccs-lint enforces the repo's determinism/concurrency/allocation/
# durability invariants (internal/lint). Also usable as `go vet
# -vettool`; see README "Linting".
lint:
	$(GO) run ./cmd/pccs-lint ./...

# Machine-readable findings (one JSON object per line) for editors and
# the CI problem matcher (.github/pccs-lint-matcher.json).
lint-json:
	$(GO) run ./cmd/pccs-lint -json ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the serving/scheduling benchmark artifact — the same command
# the nightly workflow publishes, so a local run is diffable against the
# committed BENCH_serving.json baseline.
bench-json:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkServerPredict|BenchmarkServerSchedule|BenchmarkSchedule' \
		-benchmem -count=1 ./internal/server ./internal/sched \
		| $(GO) run ./cmd/pccs-benchjson -o BENCH_serving.json

fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPredictDecode$$' -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzCalibrateDecode$$' -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz '^FuzzJournalReopen$$' -fuzztime 10s ./internal/server

check: vet lint build race

# Load-test a RUNNING pccsd with the closed/open-loop generator. Override
# the target or shape via STRESS_ARGS, e.g.
#   make stress STRESS_ARGS="-url http://localhost:8080 -ramp 8,32,128 -d 30s"
STRESS_ARGS ?= -d 10s -c 16 -deadline-ms 2000
stress:
	$(GO) run ./cmd/pccs-stress $(STRESS_ARGS)

# The overload acceptance test (TestSoakOverload: 10× capacity with
# injected faults; bounded accepted-p99, load-proportional shedding,
# recovery within seconds) at soak length. SOAK_DURATION is the load time
# per ramp step; CI nightly runs 20s, the unit-test default is 2s.
SOAK_DURATION ?= 20s
soak:
	PCCS_SOAK_DURATION=$(SOAK_DURATION) $(GO) test ./internal/server -run '^TestSoakOverload$$' -count=1 -v -timeout 600s

# The cluster chaos proofs: three in-process nodes, a seeded mid-sweep
# kill plus partition, byte-identical matrix reassembly, version-race
# convergence, and predict availability at every soak point.
cluster-chaos:
	$(GO) test ./internal/server -run '^TestCluster' -count=1 -race -v -timeout 900s
	$(GO) test ./internal/cluster -count=1 -race -timeout 900s

# Deterministic simulation testing: DST_N random fault schedules against
# the in-process cluster on the virtual clock, under -race. Hundreds of
# schedules finish in seconds because no schedule ever sleeps real time;
# a red schedule is shrunk and printed as replayable -seed/-schedule
# flags. See DESIGN.md §14 and cmd/pccs-dst.
DST_N ?= 200
DST_SEED ?= 1
dst:
	$(GO) run -race ./cmd/pccs-dst -n $(DST_N) -seed $(DST_SEED)

# End-to-end scheduler demo against the shipped models: plan a mixed batch,
# report worst-case contention bounds, and replay the schedule through the
# simulator (quick windows). Override the batch via SCHED_ARGS.
SCHED_ARGS ?= -workloads streamcluster,pathfinder,kmeans,bfs,resnet50 -worst-case -validate -quick
sched-demo:
	$(GO) run ./cmd/pccs-sched $(SCHED_ARGS)

clean:
	$(GO) clean ./...
