// Command pccs-calibrate constructs PCCS slowdown models for the virtual
// platforms (the processor-centric methodology of §3.2: calibrator sweep +
// five-step parameter extraction) and writes them to a model file the rest
// of the tooling loads.
//
// The sweep's grid points fan out over a worker pool (GOMAXPROCS by
// default, -workers to override); results are bit-identical to a serial
// sweep. ^C aborts the running sweep gracefully: models already constructed
// are saved before exiting.
//
// Usage:
//
//	pccs-calibrate [-o models/pccs-models.json] [-platform all|<registered name>]
//	               [-mode robust|strict] [-quick] [-workers N]
//
// -platform accepts any registered platform backend ("pccs-calibrate
// -platform list" prints them); the historical aliases xavier and
// snapdragon still resolve. "all" calibrates both reference SoCs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-calibrate: ")
	var (
		out     = flag.String("o", "models/pccs-models.json", "output model file")
		plat    = flag.String("platform", "all", "platform to calibrate: all, list, or a registered name")
		mode    = flag.String("mode", "robust", "extraction mode: robust or strict")
		quick   = flag.Bool("quick", false, "short simulation windows (noisier parameters)")
		workers = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opt := calib.DefaultOptions()
	switch *mode {
	case "robust":
	case "strict":
		opt.Mode = calib.Strict
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	rc := soc.RunConfig{WarmupCycles: 200_000, MeasureCycles: 1_000_000}
	if *quick {
		rc = soc.QuickRunConfig()
	}

	var platforms []soc.Backend
	switch *plat {
	case "all":
		platforms = []soc.Backend{soc.VirtualXavier(), soc.VirtualSnapdragon()}
	case "list":
		for _, f := range platform.List() {
			fmt.Printf("%-20s %-12s %s\n", f.Name, f.Family, f.Description)
		}
		return
	case "xavier":
		platforms = []soc.Backend{soc.VirtualXavier()}
	case "snapdragon":
		platforms = []soc.Backend{soc.VirtualSnapdragon()}
	default:
		b, err := platform.Get(*plat)
		if err != nil {
			log.Fatal(err)
		}
		platforms = []soc.Backend{b}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ex := simrun.New(*workers)
	ex.OnProgress = func(completed, total int) {
		fmt.Fprintf(os.Stderr, "\r%d/%d simulation points", completed, total)
	}

	set := calib.ModelSet{}
	if existing, err := calib.Load(*out); err == nil {
		set = existing // refresh only the requested platforms
	}
	for _, p := range platforms {
		for i := range p.PUList() {
			start := time.Now()
			params, matrix, err := calib.ConstructPUContext(ctx, ex, p, i, rc, opt)
			fmt.Fprint(os.Stderr, "\r\n")
			if err != nil {
				if ctx.Err() != nil {
					// Keep what finished before the interrupt.
					if serr := set.Save(*out); serr == nil && len(set) > 0 {
						fmt.Fprintf(os.Stderr, "interrupted: wrote %d completed models to %s\n", len(set), *out)
					}
					log.Fatalf("interrupted while constructing %s/%s", p.PlatformName(), p.PUList()[i].Name)
				}
				log.Fatalf("constructing %s/%s: %v", p.PlatformName(), p.PUList()[i].Name, err)
			}
			set.Put(params)
			fmt.Printf("%s  (%d×%d matrix, %s, %d workers)\n", params,
				len(matrix.StdBW), len(matrix.ExtBW), time.Since(start).Round(time.Second), ex.Workers())
		}
	}
	if err := set.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d models to %s\n", len(set), *out)
}
