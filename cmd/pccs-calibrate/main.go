// Command pccs-calibrate constructs PCCS slowdown models for the virtual
// platforms (the processor-centric methodology of §3.2: calibrator sweep +
// five-step parameter extraction) and writes them to a model file the rest
// of the tooling loads.
//
// Usage:
//
//	pccs-calibrate [-o models/pccs-models.json] [-platform all|xavier|snapdragon]
//	               [-mode robust|strict] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-calibrate: ")
	var (
		out      = flag.String("o", "models/pccs-models.json", "output model file")
		platform = flag.String("platform", "all", "platform to calibrate: all, xavier, snapdragon")
		mode     = flag.String("mode", "robust", "extraction mode: robust or strict")
		quick    = flag.Bool("quick", false, "short simulation windows (noisier parameters)")
	)
	flag.Parse()

	opt := calib.DefaultOptions()
	switch *mode {
	case "robust":
	case "strict":
		opt.Mode = calib.Strict
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	rc := soc.RunConfig{WarmupCycles: 200_000, MeasureCycles: 1_000_000}
	if *quick {
		rc = soc.QuickRunConfig()
	}

	var platforms []*soc.Platform
	switch *platform {
	case "all":
		platforms = []*soc.Platform{soc.VirtualXavier(), soc.VirtualSnapdragon()}
	case "xavier":
		platforms = []*soc.Platform{soc.VirtualXavier()}
	case "snapdragon":
		platforms = []*soc.Platform{soc.VirtualSnapdragon()}
	default:
		log.Fatalf("unknown platform %q", *platform)
	}

	set := calib.ModelSet{}
	if existing, err := calib.Load(*out); err == nil {
		set = existing // refresh only the requested platforms
	}
	for _, p := range platforms {
		for i := range p.PUs {
			start := time.Now()
			params, matrix, err := calib.ConstructPU(p, i, rc, opt)
			if err != nil {
				log.Fatalf("constructing %s/%s: %v", p.Name, p.PUs[i].Name, err)
			}
			set.Put(params)
			fmt.Printf("%s  (%d×%d matrix, %s)\n", params,
				len(matrix.StdBW), len(matrix.ExtBW), time.Since(start).Round(time.Second))
		}
	}
	if err := set.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d models to %s\n", len(set), *out)
}
