// Command pccs-stress drives load at a running pccsd and reports what came
// back: throughput, accepted-request latency percentiles, and a full
// shed/degraded/error accounting. It is the operator's overload probe — the
// tool that answers "what does this daemon do at 10× capacity" before
// production traffic asks the same question.
//
// Usage:
//
//	pccs-stress [-url http://localhost:8080 | -urls http://a:8080,http://b:8080]
//	            [-path /v1/predict]
//	            [-body '{"platform":...}' | -body-file req.json]
//	            [-c 8 | -ramp 8,32,128] [-qps 0] [-d 10s]
//	            [-deadline-ms 0] [-api-key key]
//
// Modes:
//
//	closed loop (default)  -c workers each fire as fast as responses return;
//	                       throughput adapts to the server. -ramp runs
//	                       consecutive steps at each concurrency.
//	open loop (-qps > 0)   fixed request rate regardless of response times —
//	                       the honest saturation probe: a slow server does
//	                       not slow the offered load down, so queueing
//	                       collapse and shedding become visible.
//
// -deadline-ms sets the X-Deadline-Ms header on every request, exercising
// the server's deadline propagation; -api-key sets X-API-Key, the
// per-client rate-limiter key.
//
// -urls soaks a pccsd cluster: requests round-robin across the node base
// URLs, so every node's shard routing, peer forwarding, and degraded
// serving see load at once. Degraded answers (stale-cache or partitioned)
// are counted in the report's degraded line.
//
// Exit status: 0 when the run completed, 1 on configuration or transport
// setup errors. Shed responses are data, not failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/processorcentricmodel/pccs/internal/stress"
)

// defaultBody is a representative single prediction against the shipped
// virtual platform, so `pccs-stress` works out of the box against a daemon
// seeded with the default model artifact.
const defaultBody = `{"platform":"virtual-xavier","pu":"GPU","demand_gbps":88,"external_gbps":40}`

func main() {
	var (
		url        = flag.String("url", "http://localhost:8080", "pccsd base URL")
		urls       = flag.String("urls", "", "cluster soak: comma-separated node base URLs, round-robinned per request (overrides -url)")
		path       = flag.String("path", "/v1/predict", "endpoint path")
		method     = flag.String("method", "", "HTTP method (default POST with a body, GET without)")
		body       = flag.String("body", "", "request body (default: a representative /v1/predict payload)")
		bodyFile   = flag.String("body-file", "", "read the request body from a file (overrides -body)")
		conc       = flag.Int("c", 8, "closed-loop worker count")
		ramp       = flag.String("ramp", "", "comma-separated concurrency steps (closed loop), e.g. 8,32,128")
		qps        = flag.Float64("qps", 0, "open-loop request rate; 0 = closed loop")
		dur        = flag.Duration("d", 10*time.Second, "run duration (split across -ramp steps)")
		deadlineMs = flag.Int("deadline-ms", 0, "X-Deadline-Ms header on every request; 0 = none")
		apiKey     = flag.String("api-key", "", "X-API-Key header (per-client rate-limit key)")
	)
	flag.Parse()

	payload := []byte(*body)
	if *bodyFile != "" {
		b, err := os.ReadFile(*bodyFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccs-stress: %v\n", err)
			os.Exit(1)
		}
		payload = b
	} else if *body == "" && *path == "/v1/predict" {
		payload = []byte(defaultBody)
	}

	var nodeURLs []string
	if *urls != "" {
		for _, u := range strings.Split(*urls, ",") {
			if u = strings.TrimSpace(strings.TrimRight(u, "/")); u != "" {
				nodeURLs = append(nodeURLs, u)
			}
		}
	}

	cfg := stress.Config{
		URL:         *url,
		URLs:        nodeURLs,
		Path:        *path,
		Method:      *method,
		Body:        payload,
		Concurrency: *conc,
		QPS:         *qps,
		Duration:    *dur,
		DeadlineMs:  *deadlineMs,
		APIKey:      *apiKey,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	steps, err := parseRamp(*ramp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pccs-stress: %v\n", err)
		os.Exit(1)
	}
	if len(steps) > 0 && *qps > 0 {
		fmt.Fprintln(os.Stderr, "pccs-stress: -ramp is a closed-loop option; drop -qps or -ramp")
		os.Exit(1)
	}

	reports, err := stress.Ramp(ctx, cfg, steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pccs-stress: %v\n", err)
		os.Exit(1)
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep.String())
	}
}

// parseRamp turns "8,32,128" into concurrency steps.
func parseRamp(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	steps := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -ramp step %q (want positive integers)", p)
		}
		steps = append(steps, n)
	}
	return steps, nil
}
