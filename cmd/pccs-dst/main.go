// Command pccs-dst explores randomized fault schedules against a simulated
// pccsd cluster in virtual time — deterministic simulation testing. Every
// schedule boots a fresh multi-node cluster in-process (virtual clock,
// in-memory transport), runs a distributed calibration sweep and a
// replication workload while partitions, message chaos, crashes, and clock
// skew fire, then checks the cluster's invariants: byte-identical sweep
// reassembly, newer-wins version convergence, balanced lease accounting,
// prober health convergence, and no goroutine leaks.
//
// Usage:
//
//	pccs-dst [-n 200] [-seed 1] [-nodes 3] [-platform virtual-xavier]
//	         [-schedule "100ms:cut:n1:n2;700ms:heal:n1:n2"] [-v]
//	         [-bug skip-recovery|drop-journal-tail]
//
// Modes:
//
//	explore (default)      generate and run -n schedules from consecutive
//	                       seeds starting at -seed; on the first invariant
//	                       violation, greedily shrink it to a minimal
//	                       reproducer and print both as replayable flags.
//	replay (-schedule)     run exactly one schedule, parsed from the same
//	                       compact encoding the explorer prints. -seed
//	                       still drives the per-message network randomness,
//	                       so a printed reproducer replays bit-for-bit.
//
// -bug deliberately re-introduces a known recovery defect (restart without
// journal replay, or with a torn journal tail) — the harness's self-test
// that real bug classes are caught and shrunk, wired into `make dst`.
//
// Exit status: 0 when every schedule is green, 1 on an invariant violation
// (reproducer printed), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/processorcentricmodel/pccs/internal/dst"
)

func main() {
	var (
		n        = flag.Int("n", 200, "schedules to explore")
		seed     = flag.Uint64("seed", 1, "base seed (consecutive seeds follow)")
		nodes    = flag.Int("nodes", 3, "cluster size (n1 hosts the coordinator)")
		plat     = flag.String("platform", "virtual-xavier", "platform backend for the distributed sweep")
		schedule = flag.String("schedule", "", "replay one explicit schedule instead of exploring")
		bug      = flag.String("bug", "", "re-introduce a known bug: skip-recovery | drop-journal-tail")
		verbose  = flag.Bool("v", false, "log every schedule")
	)
	flag.Parse()

	opt := dst.Options{Platform: *plat}
	switch *bug {
	case "":
	case "skip-recovery":
		opt.BugSkipRecovery = true
	case "drop-journal-tail":
		opt.BugDropJournalTail = true
	default:
		fmt.Fprintf(os.Stderr, "pccs-dst: unknown -bug %q\n", *bug)
		os.Exit(2)
	}

	if *schedule != "" {
		sch, err := dst.ParseSchedule(*seed, *nodes, *schedule)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pccs-dst: %v\n", err)
			os.Exit(2)
		}
		if err := dst.RunSchedule(sch, opt); err != nil {
			fmt.Fprintf(os.Stderr, "pccs-dst: seed %d: %v\n", *seed, err)
			os.Exit(1)
		}
		fmt.Printf("schedule green (seed %d, %d events)\n", *seed, len(sch.Events))
		return
	}

	start := time.Now()
	progress := func(done int) {
		if *verbose || done%50 == 0 {
			fmt.Printf("  %d/%d schedules green (%.1f/s)\n", done, *n, float64(done)/time.Since(start).Seconds())
		}
	}
	fail, ran := dst.Explore(*n, *seed, *nodes, opt, progress)
	elapsed := time.Since(start)
	if fail != nil {
		fmt.Fprintf(os.Stderr, "pccs-dst: invariant violation on schedule %d/%d after %v:\n%s\n", ran, *n, elapsed.Round(time.Millisecond), fail)
		os.Exit(1)
	}
	fmt.Printf("all %d schedules green in %v (%.1f schedules/s)\n", ran, elapsed.Round(time.Millisecond), float64(ran)/elapsed.Seconds())
}
