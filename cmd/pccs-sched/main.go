// Command pccs-sched plans a contention-aware co-run schedule for a batch
// of pending workloads: it searches PU assignments and co-run groupings
// with the PCCS slowdown model as the inner-loop cost (internal/sched) and
// prints the chosen waves, their predicted times, and the batch speedup
// over serial execution.
//
// The search fans out over a worker pool (GOMAXPROCS by default, -workers
// to override); the schedule is bit-identical for every worker count and
// seed-reproducible. ^C aborts the search or validation replay gracefully.
//
// Usage:
//
//	pccs-sched -workloads streamcluster,pathfinder,hotspot
//	           [-models models/pccs-models.json] [-platform virtual-xavier]
//	           [-objective makespan|throughput|fairness] [-workers N]
//	           [-worst-case] [-validate] [-quick] [-seed N] [-json]
//	pccs-sched -spec items.json   # full []sched.Item control (SLOs, phases)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/processorcentricmodel/pccs/internal/calib"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/report"
	"github.com/processorcentricmodel/pccs/internal/sched"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-sched: ")
	var (
		modelPath = flag.String("models", "models/pccs-models.json", "constructed model file")
		platName  = flag.String("platform", "virtual-xavier", "registered platform backend (xavier/snapdragon are aliases)")
		workloads = flag.String("workloads", "", "comma-separated registered workload names to schedule")
		specPath  = flag.String("spec", "", "JSON file holding a []sched.Item batch (overrides -workloads)")
		objective = flag.String("objective", "makespan", "optimization target: makespan, throughput, or fairness")
		workers   = flag.Int("workers", 0, "search/validation worker pool size (0 = GOMAXPROCS)")
		worstCase = flag.Bool("worst-case", false, "report adversarial worst-case contention bounds")
		validate  = flag.Bool("validate", false, "replay the schedule through the simulator and report prediction error")
		quick     = flag.Bool("quick", false, "short simulation windows for -validate (noisier measurements)")
		seed      = flag.Int64("seed", 0, "beam-search restart seed (same seed, same schedule)")
		asJSON    = flag.Bool("json", false, "emit the full result as JSON instead of tables")
	)
	flag.Parse()

	obj, err := sched.ParseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}
	var p soc.Backend
	switch *platName {
	case "virtual-xavier", "xavier":
		p = soc.VirtualXavier()
	case "virtual-snapdragon", "snapdragon":
		p = soc.VirtualSnapdragon()
	default:
		b, err := platform.Get(*platName)
		if err != nil {
			log.Fatal(err)
		}
		p = b
	}
	models, err := calib.Load(*modelPath)
	if err != nil {
		log.Fatalf("loading models: %v (run pccs-calibrate first?)", err)
	}
	items, err := loadItems(*specPath, *workloads)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := sched.Solve(ctx, models, p, items, sched.Options{
		Objective: obj, Seed: *seed, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	var wc *sched.WorstCase
	if *worstCase {
		if wc, err = sched.WorstCaseBounds(ctx, models, p, items, s); err != nil {
			log.Fatal(err)
		}
	}
	var val *sched.Validation
	if *validate {
		rc := soc.DefaultRunConfig()
		if *quick {
			rc = soc.QuickRunConfig()
		}
		ex := simrun.New(*workers)
		ex.OnProgress = func(completed, total int) {
			fmt.Fprintf(os.Stderr, "\rreplaying %d/%d simulation runs", completed, total)
		}
		val, err = sched.Validate(ctx, ex, p, s, rc)
		fmt.Fprint(os.Stderr, "\r\n")
		if err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		out := struct {
			Schedule   *sched.Schedule   `json:"schedule"`
			WorstCase  *sched.WorstCase  `json:"worst_case,omitempty"`
			Validation *sched.Validation `json:"validation,omitempty"`
		}{s, wc, val}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	printSchedule(s)
	if wc != nil {
		printWorstCase(wc)
	}
	if val != nil {
		printValidation(val)
	}
}

// loadItems builds the batch from -spec (full control) or -workloads
// (registered names; duplicates are distinct items).
func loadItems(specPath, workloads string) ([]sched.Item, error) {
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		var items []sched.Item
		if err := json.Unmarshal(data, &items); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", specPath, err)
		}
		if len(items) == 0 {
			return nil, fmt.Errorf("%s holds no items", specPath)
		}
		return items, nil
	}
	if workloads == "" {
		return nil, fmt.Errorf("nothing to schedule: pass -workloads name,name,... or -spec items.json")
	}
	var items []sched.Item
	for _, name := range strings.Split(workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		items = append(items, sched.Item{Workload: name})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("nothing to schedule: -workloads names all empty")
	}
	return items, nil
}

func printSchedule(s *sched.Schedule) {
	mode := "beam"
	if s.Exhaustive {
		mode = "exhaustive"
	}
	tbl := report.NewTable(
		fmt.Sprintf("Schedule for %s (%s, %s search, %d candidates)", s.Platform, s.Objective, mode, s.Evaluated),
		"wave", "item", "pu", "demand GB/s", "ext GB/s", "pred RS%", "slowdown", "time")
	for _, w := range s.Waves {
		for _, a := range w.Assignments {
			tbl.Add(fmt.Sprint(w.Index), a.Item, a.PU, report.F(a.DemandGBps),
				report.F(a.ExternalGBps), report.F(a.PredictedRS), report.F2(a.Slowdown), report.F2(a.Time))
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan %.2f vs serial %.2f (speedup %.2fx), busy %.2f, max slowdown %.2f\n",
		s.Makespan, s.SerialMakespan, s.Speedup, s.BusyTime, s.MaxSlowdown)
	if !s.Feasible {
		fmt.Printf("INFEASIBLE: %s\n", strings.Join(s.Violations, "; "))
	}
}

func printWorstCase(wc *sched.WorstCase) {
	tbl := report.NewTable("Worst-case contention bounds (adversarial co-runner mixes from the batch)",
		"item", "pu", "expected", "worst", "saturated", "worst adversaries")
	for _, b := range wc.Bounds {
		var advs []string
		for _, a := range b.Adversaries {
			advs = append(advs, fmt.Sprintf("%s@%s", a.Item, a.PU))
		}
		adv := strings.Join(advs, " ")
		if adv == "" {
			adv = "(alone)"
		}
		if b.Relaxed {
			adv += " [relaxed]"
		}
		tbl.Add(b.Item, b.PU, report.F2(b.ExpectedSlowdown), report.F2(b.WorstSlowdown),
			report.F2(b.SaturatedSlowdown), adv)
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func printValidation(v *sched.Validation) {
	tbl := report.NewTable("Validation: schedule replayed through the simulator",
		"wave", "item", "pu", "pred RS%", "actual RS%", "|err|")
	for _, w := range v.Waves {
		for _, it := range w.Items {
			tbl.Add(fmt.Sprint(w.Index), it.Item, it.PU,
				report.F(it.PredictedRS), report.F(it.ActualRS), report.F(it.AbsErrorRS))
		}
	}
	if _, err := tbl.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan: predicted %.2f vs actual %.2f (%.1f%% error), mean |RS error| %.1f%%\n",
		v.PredictedMakespan, v.ActualMakespan, v.MakespanErrorPct, v.MeanAbsRSError)
}
