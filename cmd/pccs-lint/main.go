// Command pccs-lint machine-checks the repository's determinism,
// concurrency, allocation, and durability invariants with the analyzers
// in internal/lint.
//
// Standalone, over package patterns (exit 1 on findings):
//
//	go run ./cmd/pccs-lint ./...
//	go run ./cmd/pccs-lint -json ./...
//
// -json emits one JSON object per finding ({"file","line","col",
// "analyzer","message"}, one per output line) for editor and CI
// integration; the human format stays file:line:col: [analyzer] message.
//
// Or as a vet tool, which reuses the go command's package graph and
// caching (exit 2 on findings, matching vet's convention):
//
//	go build -o /tmp/pccs-lint ./cmd/pccs-lint
//	go vet -vettool=/tmp/pccs-lint ./...
//
// Note that under vet each package is analyzed in isolation, so the
// module-wide analyzers (lockorder) see only per-package subgraphs;
// standalone mode analyzes the whole module graph.
//
// Findings are suppressed per line or per function with a reasoned
// annotation, e.g. //pccs:allow-nodeterminism <reason> (the canonical
// tag is the analyzer name; see the internal/lint package documentation
// for legacy spellings that remain accepted).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/processorcentricmodel/pccs/internal/lint"
)

func main() {
	args := os.Args[1:]

	// The go command probes vet tools before use: -V=full must print a
	// version line whose buildID keys vet's result cache, -flags the
	// tool's flag set (we define none).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		if err := printVersion(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	jsonOut := false
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	os.Exit(runStandalone(args, jsonOut))
}

// printVersion emits the `-V=full` line the go command parses; the
// buildID is a hash of the executable so edits to the tool invalidate
// cached vet results.
func printVersion() error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(os.Args[0]), sum)
	return nil
}

// runStandalone loads the patterns (default ./...) itself and prints
// every finding. Exit 0 clean, 1 findings, 2 operational failure.
func runStandalone(patterns []string, jsonOut bool) int {
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.Check(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", position(d.Pos), d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			fmt.Printf("pccs-lint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is the -json line format: one object per finding, one
// finding per output line (JSON Lines), stable field names for CI
// problem matchers and editor integrations.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// vetConfig is the subset of the go command's vet .cfg JSON the tool
// needs: the file set of one package plus the import→export-data maps
// for its dependencies.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package under `go vet -vettool=`. The go command
// hands each package a JSON config and expects findings on stderr, an
// (empty, for us) facts file at VetxOutput, and exit 2 when findings
// exist.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pccs-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Dependency packages are handed to the tool for fact collection
	// only (VetxOnly). The suite exports no facts and the invariants are
	// this module's, not the stdlib's: write the empty facts file and
	// move on.
	if cfg.VetxOnly {
		return writeVetx(cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The suite analyzes production code only; vet includes the
		// package's test files in its unit.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// PackageFile is keyed by canonical path; route source-level import
	// paths through ImportMap so the gc importer finds them.
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}

	var diags []lint.Diagnostic
	if len(files) > 0 {
		pkg, err := lint.TypeCheck(fset, cfg.ImportPath, files, lint.ExportImporter(fset, exports))
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput)
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		diags, err = lint.Check([]*lint.Package{pkg}, lint.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", position(d.Pos), d.Analyzer, d.Message)
	}
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts file the go command expects from a
// vet tool; the suite exports no cross-package facts.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func position(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
