// Command mcsim is the standalone memory-controller policy simulator used
// by the §2.3 validation (the Ramulator-based study of the paper): a
// 16-core CMP over DDR4-3200, with a low-bandwidth core group and a
// high-bandwidth core group, under a selectable scheduling policy.
//
// Usage:
//
//	mcsim -policy TCM -low 60 -high 90
//	mcsim -policy all -low 60 -high 90
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/soc"
	"github.com/processorcentricmodel/pccs/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mcsim: ")
	var (
		policy = flag.String("policy", "all", "FCFS, FR-FCFS, ATLAS, TCM, SMS, or all")
		low    = flag.Float64("low", 60, "low-group total demand (GB/s), split over cores 0-7")
		high   = flag.Float64("high", 90, "high-group total demand (GB/s), split over cores 8-15")
		full   = flag.Bool("full", false, "long simulation windows")
	)
	flag.Parse()

	var policies []memctrl.PolicyKind
	if *policy == "all" {
		policies = memctrl.AllPolicies
	} else {
		k, err := memctrl.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		policies = []memctrl.PolicyKind{k}
	}
	rc := soc.QuickRunConfig()
	if *full {
		rc = soc.DefaultRunConfig()
	}

	fmt.Printf("CMP16 DDR4-3200 (%.1f GB/s peak): low group %.0f GB/s, high group %.0f GB/s\n\n",
		soc.CMP16(memctrl.FCFS).PeakGBps(), *low, *high)
	fmt.Printf("%-8s  %10s  %10s  %8s  %12s\n", "policy", "lowRS %", "highRS %", "RBH %", "effBW GB/s")
	for _, pk := range policies {
		p := soc.CMP16(pk)
		pl := soc.Placement{}
		for i := 0; i < 8; i++ {
			pl[i] = soc.Kernel{Name: fmt.Sprintf("low%d", i), DemandGBps: *low / 8}
		}
		for i := 8; i < 16; i++ {
			pl[i] = soc.Kernel{Name: fmt.Sprintf("high%d", i), DemandGBps: *high / 8}
		}
		res, err := p.RelativeSpeeds(pl, rc)
		if err != nil {
			log.Fatal(err)
		}
		out, err := p.Run(pl, rc)
		if err != nil {
			log.Fatal(err)
		}
		var lowRS, highRS []float64
		for i := 0; i < 8; i++ {
			lowRS = append(lowRS, 100*res[i].RelativeSpeed)
		}
		for i := 8; i < 16; i++ {
			highRS = append(highRS, 100*res[i].RelativeSpeed)
		}
		fmt.Printf("%-8s  %10.1f  %10.1f  %8.1f  %12.1f\n",
			pk, stats.Mean(lowRS), stats.Mean(highRS), 100*out.RowHitRate, out.EffectiveGBps)
	}
}
