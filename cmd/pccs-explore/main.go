// Command pccs-explore runs the pre-silicon frequency exploration of §4.3:
// pick the highest PU clock whose predicted co-run slowdown stays within a
// budget, and compare the PCCS choice against the Gables baseline.
//
// Usage:
//
//	pccs-explore -ext 40 -budget 5
//	pccs-explore -ext 60 -budget 20 -membound 88 -crossover 900 -maxmhz 1377
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/processorcentricmodel/pccs/internal/explore"
	"github.com/processorcentricmodel/pccs/internal/gables"
	plat "github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-explore: ")
	var (
		modelPath = flag.String("models", "models/pccs-models.json", "constructed model artifact")
		platform  = flag.String("platform", "virtual-xavier", "platform name")
		pu        = flag.String("pu", "GPU", "processing unit name")
		ext       = flag.Float64("ext", 40, "expected external bandwidth demand (GB/s)")
		budget    = flag.Float64("budget", 5, "maximum allowed co-run slowdown (%)")
		membound  = flag.Float64("membound", 88, "kernel's memory-bound demand (GB/s)")
		crossover = flag.Float64("crossover", 900, "clock (MHz) above which demand saturates")
		maxmhz    = flag.Float64("maxmhz", 1377, "PU top clock (MHz)")
		lo        = flag.Float64("lo", 300, "ladder floor (MHz)")
		step      = flag.Float64("step", 10, "ladder step (MHz)")
	)
	flag.Parse()

	models, err := server.OpenRegistry(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := models.Get(*platform, *pu)
	if err != nil {
		log.Fatal(err)
	}
	// Resolve the SoC peak from the registered backend when the name is
	// known, else fall back to the model's own recorded peak.
	peak := m.PeakBW
	if b, err := plat.Get(*platform); err == nil {
		peak = b.PeakGBps()
	}
	g, err := gables.New(peak)
	if err != nil {
		log.Fatal(err)
	}

	fm := explore.FreqModel{Kernel: "kernel", MemBoundGBps: *membound, CrossoverMHz: *crossover, MaxMHz: *maxmhz}
	ladder := explore.Ladder(*lo, *maxmhz, *step)

	pccsSel, err := explore.SelectFrequency(m, fm, *ext, *budget, ladder)
	if err != nil {
		log.Fatal(err)
	}
	gablesSel, err := explore.SelectFrequency(g, fm, *ext, *budget, ladder)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frequency selection on %s/%s (budget %.0f%% slowdown, external %.0f GB/s):\n",
		*platform, *pu, *budget, *ext)
	show := func(name string, s explore.Selection) {
		note := ""
		if !s.Feasible {
			note = "  [infeasible: no clock meets the budget]"
		}
		fmt.Printf("  %-7s %6.0f MHz  (demand %.1f GB/s, predicted RS %.1f%%, rel. power %.2f)%s\n",
			name, s.FreqMHz, s.DemandGBps, s.PredictedRS, explore.RelPower(s.FreqMHz, fm.MaxMHz), note)
	}
	show("PCCS:", pccsSel)
	show("Gables:", gablesSel)
	if gablesSel.FreqMHz > pccsSel.FreqMHz {
		saved := 100 * (explore.RelPower(gablesSel.FreqMHz, fm.MaxMHz) - explore.RelPower(pccsSel.FreqMHz, fm.MaxMHz)) /
			explore.RelPower(gablesSel.FreqMHz, fm.MaxMHz)
		fmt.Printf("PCCS avoids Gables' over-provisioning: %.1f%% of the PU power budget saved\n", saved)
	}
}
