// Command pccsd is the long-lived PCCS prediction daemon: it loads the
// constructed-model artifact into a concurrency-safe registry and serves
// slowdown predictions, design-space exploration, and asynchronous
// calibration over HTTP/JSON — the calibrate-once/predict-many serving
// shape of the paper's §4 use cases.
//
// Usage:
//
//	pccsd [-addr localhost:8080] [-models models/pccs-models.json]
//	      [-timeout 10s] [-write-timeout 15s] [-cache 4096] [-workers N]
//	      [-queue 64] [-journal pccsd-journal.jsonl] [-retries 3]
//	      [-faults "site:kind:rate,..."] [-fault-seed 1]
//	      [-max-concurrency 256] [-max-waiters 512] [-admission-target 250ms]
//	      [-rate 0] [-rate-burst 0] [-job-timeout 0]
//	      [-breaker-cooldown 15s] [-debug-addr ""]
//	      [-node-id n1 -peers n1=http://a:8080,n2=http://b:8080] [-replicas 2]
//	      [-journal-compact-bytes 0]
//
// Endpoints:
//
//	POST /v1/predict        single, batch, and multi-phase predictions
//	POST /v1/explore        frequency/core-count selection under a budget
//	GET  /v1/models         registry contents
//	POST /v1/models         register a constructed model
//	POST /v1/models/reload  hot-reload the model artifact from disk
//	POST /v1/calibrate      submit an async construction job (202 + job id)
//	GET  /v1/jobs           job list;  GET /v1/jobs/{id}  job status
//	GET  /healthz           liveness;  GET /metrics       Prometheus text
//
// The daemon exits cleanly on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests, and waits for running
// calibration jobs (bounded by -drain).
//
// Fault tolerance: -journal enables the crash-safe job journal (queued and
// in-flight calibrations survive a restart; terminal jobs stay queryable),
// and -faults arms deterministic chaos injection across the stack — see
// the faultinject package for the spec syntax. PCCS_FAULTS and
// PCCS_FAULT_SEED are the environment equivalents; the flags win.
//
// Overload resilience: every /v1 request passes an AIMD adaptive
// concurrency limiter steering toward -admission-target; -rate adds a
// per-client token bucket (keyed X-API-Key, else remote address); clients
// can cap a request end to end with an X-Deadline-Ms header, which is
// honoured all the way into the simulation layer; a circuit breaker guards
// simulator-backed calibration; and under sustained shedding the daemon
// browns out (stale-cache predictions, `Degraded: stale-cache` header)
// rather than collapsing. See README "Failure modes & degraded operation".
//
// -debug-addr exposes net/http/pprof on a SEPARATE listener that is
// restricted to loopback addresses, so profiling is never reachable from
// the serving interface.
//
// Clustering: -node-id plus -peers joins this daemon to a pccsd cluster —
// the model registry is sharded across members by consistent hashing with
// -replicas copies per model, calibration sweeps fan out across nodes as
// leases, and a partitioned node keeps serving replicated models with a
// `Degraded: partitioned` header. See README "Running a pccsd cluster".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/processorcentricmodel/pccs/internal/cluster"
	"github.com/processorcentricmodel/pccs/internal/faultinject"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/server"
)

// listenLoopback binds addr only if it names a loopback interface — the
// pprof endpoints expose heap contents and must never face the serving
// network.
func listenLoopback(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("-debug-addr %q: %w", addr, err)
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return nil, fmt.Errorf("-debug-addr %q is not a loopback address; refusing to expose pprof", addr)
		}
	}
	return net.Listen("tcp", addr)
}

// debugMux routes only the pprof handlers — a dedicated mux, so nothing
// else registered on http.DefaultServeMux leaks onto the debug port.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// envSeed is the -fault-seed default: PCCS_FAULT_SEED, else 1.
func envSeed() uint64 {
	if s := os.Getenv("PCCS_FAULT_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// parsePeers parses the -peers flag: comma-separated id=url pairs naming
// every cluster member, this node included. Validated eagerly — a malformed
// topology must fail startup, not the first sweep.
func parsePeers(spec string) map[string]string {
	if spec == "" {
		return nil
	}
	peers := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		id, url, ok := strings.Cut(pair, "=")
		if !ok || id == "" || url == "" {
			log.Fatalf("-peers entry %q: want id=url", pair)
		}
		if _, dup := peers[id]; dup {
			log.Fatalf("-peers lists node %q twice", id)
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	return peers
}

// platformAllowlist parses the -platform flag: a comma-separated list of
// registered platform names, validated eagerly so a typo fails startup
// instead of every request.
func platformAllowlist(spec string) []string {
	if spec == "" {
		return nil
	}
	var out []string
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if _, err := platform.Get(name); err != nil {
			log.Fatal(err)
		}
		out = append(out, name)
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccsd: ")
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		models   = flag.String("models", "models/pccs-models.json", "constructed model artifact")
		journal  = flag.String("journal", "", "crash-safe job journal path (JSONL; empty disables)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		wtimeout = flag.Duration("write-timeout", 0, "connection write timeout (0 = request timeout + 5s)")
		cache    = flag.Int("cache", 4096, "prediction cache entries (negative disables)")
		workers  = flag.Int("workers", 0, "calibration workers (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "calibration queue depth")
		retries  = flag.Int("retries", 3, "attempts per simulation point for transient faults")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		faults   = flag.String("faults", os.Getenv("PCCS_FAULTS"), "fault-injection spec site:kind:rate[:arg],... (chaos testing)")
		seed     = flag.Uint64("fault-seed", envSeed(), "fault-injection decision seed")

		maxConc    = flag.Int("max-concurrency", 0, "admission: max in-flight requests (0 = 256)")
		maxWaiters = flag.Int("max-waiters", 0, "admission: wait-queue bound before LIFO shedding (0 = 512)")
		admTarget  = flag.Duration("admission-target", 0, "admission: latency target the AIMD limiter steers toward (0 = 250ms)")
		rate       = flag.Float64("rate", 0, "per-client requests/sec token bucket, keyed X-API-Key else remote addr (0 disables)")
		rateBurst  = flag.Int("rate-burst", 0, "per-client burst capacity (0 = max(rate, 1))")
		jobTimeout = flag.Duration("job-timeout", 0, "per-calibration-job execution bound (0 = unbounded); timeouts trip the breaker")
		brCooldown = flag.Duration("breaker-cooldown", 0, "calibration circuit-breaker open duration before a half-open probe (0 = 15s)")
		debugAddr  = flag.String("debug-addr", "", "loopback-only net/http/pprof listener, e.g. 127.0.0.1:6060 (empty disables)")
		plats      = flag.String("platform", "", "comma-separated platform allowlist for calibrate/schedule requests (empty = every registered platform)")

		nodeID     = flag.String("node-id", "", "this node's cluster member id (empty = single-node)")
		peers      = flag.String("peers", "", "cluster topology as id=url,id=url,... including this node")
		replicas   = flag.Int("replicas", 0, "model replication factor across the cluster (0 = 2)")
		journalMax = flag.Int64("journal-compact-bytes", 0, "journal size that triggers compaction, bytes (0 = record count only)")
	)
	flag.Parse()

	var injector *faultinject.Injector
	if *faults != "" {
		rules, err := faultinject.Parse(*faults)
		if err != nil {
			log.Fatal(err)
		}
		injector, err = faultinject.New(*seed, rules...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("chaos armed: sites %v (seed %d)", injector.Sites(), *seed)
	}

	var ccfg *cluster.Config
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" || *peers == "" {
			log.Fatal("-node-id and -peers must be given together")
		}
		ccfg = &cluster.Config{
			ID:       *nodeID,
			Peers:    parsePeers(*peers),
			Replicas: *replicas,
		}
	}

	srv, err := server.New(server.Config{
		Addr:           *addr,
		ModelPath:      *models,
		JournalPath:    *journal,
		RequestTimeout: *timeout,
		WriteTimeout:   *wtimeout,
		CacheSize:      *cache,
		Workers:        *workers,
		JobQueueDepth:  *queue,
		RetryAttempts:  *retries,
		Faults:         injector,

		MaxConcurrency:  *maxConc,
		MaxWaiters:      *maxWaiters,
		AdmissionTarget: *admTarget,
		RatePerSec:      *rate,
		RateBurst:       *rateBurst,
		JobTimeout:      *jobTimeout,
		Breaker:         server.BreakerConfig{Cooldown: *brCooldown},
		Platforms:       platformAllowlist(*plats),

		Cluster:             ccfg,
		JournalCompactBytes: *journalMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d models from %s on http://%s", srv.Registry().Len(), *models, *addr)
	if *journal != "" {
		log.Printf("job journal at %s", *journal)
	}
	if node := srv.Cluster(); node != nil {
		probeCtx, probeStop := context.WithCancel(context.Background())
		defer probeStop()
		node.Prober().Start(probeCtx, 2*time.Second)
		log.Printf("cluster node %s: %d peers, %d replicas", node.ID(), len(node.NodeIDs())-1, node.Replicas())
	}
	if *debugAddr != "" {
		ln, err := listenLoopback(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
		go func() {
			// Best-effort: losing the debug listener must not take the
			// daemon down.
			if err := http.Serve(ln, debugMux()); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (budget %s)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
			os.Exit(1)
		}
		log.Printf("clean shutdown")
	}
}
