// Command pccsd is the long-lived PCCS prediction daemon: it loads the
// constructed-model artifact into a concurrency-safe registry and serves
// slowdown predictions, design-space exploration, and asynchronous
// calibration over HTTP/JSON — the calibrate-once/predict-many serving
// shape of the paper's §4 use cases.
//
// Usage:
//
//	pccsd [-addr localhost:8080] [-models models/pccs-models.json]
//	      [-timeout 10s] [-cache 4096] [-workers N] [-queue 64]
//
// Endpoints:
//
//	POST /v1/predict        single, batch, and multi-phase predictions
//	POST /v1/explore        frequency/core-count selection under a budget
//	GET  /v1/models         registry contents
//	POST /v1/models         register a constructed model
//	POST /v1/models/reload  hot-reload the model artifact from disk
//	POST /v1/calibrate      submit an async construction job (202 + job id)
//	GET  /v1/jobs           job list;  GET /v1/jobs/{id}  job status
//	GET  /healthz           liveness;  GET /metrics       Prometheus text
//
// The daemon exits cleanly on SIGINT/SIGTERM: it stops accepting
// connections, drains in-flight requests, and waits for running
// calibration jobs (bounded by -drain).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/processorcentricmodel/pccs/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccsd: ")
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		models  = flag.String("models", "models/pccs-models.json", "constructed model artifact")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		cache   = flag.Int("cache", 4096, "prediction cache entries (negative disables)")
		workers = flag.Int("workers", 0, "calibration workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "calibration queue depth")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Addr:           *addr,
		ModelPath:      *models,
		RequestTimeout: *timeout,
		CacheSize:      *cache,
		Workers:        *workers,
		JobQueueDepth:  *queue,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d models from %s on http://%s", srv.Registry().Len(), *models, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (budget %s)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
			os.Exit(1)
		}
		log.Printf("clean shutdown")
	}
}
