// Command pccs-experiments regenerates the paper's tables and figures on
// the virtual platforms.
//
// Usage:
//
//	pccs-experiments -list
//	pccs-experiments -run fig8
//	pccs-experiments -run all [-models models/pccs-models.json] [-full]
//
// Most experiments need the constructed model artifact; run pccs-calibrate
// first (the repository ships a pre-built models/pccs-models.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/processorcentricmodel/pccs/internal/experiments"
	"github.com/processorcentricmodel/pccs/internal/simrun"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-experiments: ")
	var (
		list     = flag.Bool("list", false, "list experiments")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		models   = flag.String("models", "models/pccs-models.json", "constructed model artifact")
		full     = flag.Bool("full", false, "use long simulation windows (slower, less noise)")
		workers  = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", true, "print simulation-point progress to stderr")
		plats    = flag.String("platform", "", "comma-separated registered platforms for the cross-backend experiments (empty = their defaults)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	rc := soc.QuickRunConfig()
	if *full {
		rc = soc.DefaultRunConfig()
	}
	ctx, err := experiments.NewContext(os.Stdout, *models, rc)
	if err != nil {
		log.Fatal(err)
	}

	// ^C cancels the simulation context: the running figure aborts at the
	// next event-loop checkpoint instead of finishing its sweep.
	sig, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx.Sim = sig
	if *plats != "" {
		for _, name := range strings.Split(*plats, ",") {
			ctx.Backends = append(ctx.Backends, strings.TrimSpace(name))
		}
	}
	if *workers > 0 {
		ctx.Exec = simrun.New(*workers)
	}
	if *progress {
		ctx.Exec.OnProgress = func(completed, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulation points", completed, total)
		}
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				log.Fatal(err)
			}
			todo = append(todo, e)
		}
	}
	for _, e := range todo {
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		err := e.Run(ctx)
		if *progress {
			fmt.Fprint(os.Stderr, "\r\n")
		}
		if err != nil {
			if sig.Err() != nil {
				log.Fatalf("%s: interrupted", e.ID)
			}
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Printf("[%s done in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
