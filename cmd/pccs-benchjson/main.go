// Command pccs-benchjson converts `go test -bench` text output into a JSON
// artifact. The nightly workflow pipes the serving and scheduling
// benchmarks through it to produce BENCH_serving.json, so regressions are
// diffable across runs without scraping the text format.
//
// Usage:
//
//	go test -run '^$' -bench . ./internal/server | pccs-benchjson -o BENCH_serving.json
//
// Non-benchmark lines (test framework chatter, PASS/ok) are ignored;
// environment lines (goos/goarch/cpu/pkg) annotate the benchmarks that
// follow them. Benchmarks appear in input order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: ns/op, B/op, allocs/op, and any custom
	// b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full artifact: environment plus results in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			r.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			r.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			r.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			if ok {
				r.Benchmarks = append(r.Benchmarks, b)
			}
		}
	}
	return r, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkServerSchedule-4   2462   458403 ns/op   185058 B/op   2951 allocs/op
//
// Fields come in (value, unit) pairs after the name and iteration count.
// Lines that merely start with "Benchmark" but don't fit the shape (e.g.
// the bare name echoed by -v) report ok=false rather than an error.
func parseBench(line, pkg string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       fields[0],
		Pkg:        pkg,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("%q: bad metric value %q", line, fields[i])
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true, nil
}
