package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/processorcentricmodel/pccs/internal/server
cpu: Intel(R) Xeon(R)
BenchmarkServerPredict-4     	  813738	      1476 ns/op	     792 B/op	      14 allocs/op
BenchmarkServerSchedule-4    	    2462	    458403 ns/op	  185058 B/op	    2951 allocs/op
PASS
ok  	github.com/processorcentricmodel/pccs/internal/server	3.859s
pkg: github.com/processorcentricmodel/pccs/internal/sched
BenchmarkScheduleExhaustive-4	     100	  10012345 ns/op	         7.000 waves
PASS
`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if r.GOOS != "linux" || r.GOARCH != "amd64" || r.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("environment not captured: %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	first := r.Benchmarks[0]
	if first.Name != "BenchmarkServerPredict-4" || first.Iterations != 813738 {
		t.Errorf("first benchmark wrong: %+v", first)
	}
	if first.Pkg != "github.com/processorcentricmodel/pccs/internal/server" {
		t.Errorf("pkg annotation wrong: %q", first.Pkg)
	}
	if first.Metrics["ns/op"] != 1476 || first.Metrics["B/op"] != 792 || first.Metrics["allocs/op"] != 14 {
		t.Errorf("metrics wrong: %v", first.Metrics)
	}
	last := r.Benchmarks[2]
	if last.Pkg != "github.com/processorcentricmodel/pccs/internal/sched" {
		t.Errorf("pkg should follow the second pkg: line, got %q", last.Pkg)
	}
	if last.Metrics["waves"] != 7 {
		t.Errorf("custom ReportMetric unit not parsed: %v", last.Metrics)
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkServerPredict",             // -v echo, no fields
		"BenchmarkServerPredict-4 notanint",  // bad iteration count
		"BenchmarkOdd-4 100 1476",            // value without unit
		"BenchmarkServerPredict-4 100 x y z", // odd field count
	} {
		if _, ok, err := parseBench(line, ""); ok || err != nil {
			t.Errorf("parseBench(%q) = ok=%v err=%v, want skipped", line, ok, err)
		}
	}
	if _, ok, err := parseBench("BenchmarkBad-4 100 abc ns/op", ""); ok || err == nil {
		t.Errorf("bad metric value should error, got ok=%v err=%v", ok, err)
	}
}
