// Command pccs-predict predicts the co-run slowdown of a kernel placement,
// the everyday use of a constructed PCCS model (paper Fig. 7 workflow).
//
// Usage:
//
//	pccs-predict -platform virtual-xavier -pu GPU -demand 88 -ext 40
//	pccs-predict -platform virtual-xavier -pu GPU -workload streamcluster -ext 40
//	pccs-predict -platform virtual-xavier -pu GPU -workload cfd -ext 40 -phases
//
// The -workload form looks up the profiled standalone demand of a shipped
// benchmark surrogate; -phases uses its per-phase profile (multi-phase
// prediction, §3.2).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/processorcentricmodel/pccs/internal/gables"
	plat "github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/server"
	"github.com/processorcentricmodel/pccs/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pccs-predict: ")
	var (
		modelPath = flag.String("models", "models/pccs-models.json", "constructed model artifact")
		platform  = flag.String("platform", "virtual-xavier", "platform name")
		pu        = flag.String("pu", "GPU", "processing unit name")
		demand    = flag.Float64("demand", 0, "kernel standalone bandwidth demand (GB/s)")
		wl        = flag.String("workload", "", "benchmark surrogate name instead of -demand")
		ext       = flag.Float64("ext", 0, "total external bandwidth demand (GB/s)")
		phases    = flag.Bool("phases", false, "use the workload's per-phase profile")
		baseline  = flag.Bool("gables", true, "also print the Gables baseline prediction")
	)
	flag.Parse()

	// The registry is the one loader shared with pccsd: same JSON parsing,
	// same per-model validation.
	models, err := server.OpenRegistry(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := models.Get(*platform, *pu)
	if err != nil {
		log.Fatal(err)
	}

	x := *demand
	if *wl != "" {
		w, err := workload.Get(*wl)
		if err != nil {
			log.Fatal(err)
		}
		if *phases {
			ph, err := w.ModelPhases(*platform, *pu)
			if err != nil {
				log.Fatal(err)
			}
			rs, err := m.PredictPhases(ph, *ext)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s on %s/%s under %.1f GB/s external (phase-wise):\n", *wl, *platform, *pu, *ext)
			fmt.Printf("  PCCS: %.1f%% of standalone speed (slowdown %.2fx)\n", rs, 100/rs)
			return
		}
		x, err = w.DemandOn(*platform, *pu)
		if err != nil {
			log.Fatal(err)
		}
	}
	if x <= 0 {
		log.Fatal("need -demand > 0 or -workload")
	}

	rs := m.Predict(x, *ext)
	fmt.Printf("kernel x=%.1f GB/s on %s/%s under y=%.1f GB/s external:\n", x, *platform, *pu, *ext)
	fmt.Printf("  region: %v\n", m.Region(x))
	fmt.Printf("  PCCS:   %.1f%% of standalone speed (slowdown %.2fx)\n", rs, 100/rs)
	if *baseline {
		// Resolve the SoC peak from the registered backend when the name
		// is known, else fall back to the model's own recorded peak.
		peak := m.PeakBW
		if b, err := plat.Get(*platform); err == nil {
			peak = b.PeakGBps()
		}
		g, err := gables.New(peak)
		if err != nil {
			log.Fatal(err)
		}
		grs := g.Predict(x, *ext)
		fmt.Printf("  Gables: %.1f%% of standalone speed (slowdown %.2fx)\n", grs, 100/grs)
	}
}
