package pccs

import (
	"github.com/processorcentricmodel/pccs/internal/memctrl"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Policy identifies a memory-controller scheduling policy (paper Table 2).
type Policy = memctrl.PolicyKind

// The five implemented scheduling policies.
const (
	FCFS   = memctrl.FCFS
	FRFCFS = memctrl.FRFCFS
	ATLAS  = memctrl.ATLAS
	TCM    = memctrl.TCM
	SMS    = memctrl.SMS
)

// AllPolicies lists every implemented policy in presentation order.
func AllPolicies() []Policy { return append([]Policy(nil), memctrl.AllPolicies...) }

// ParsePolicy converts a policy name ("FR-FCFS", "TCM", ...) to its kind.
func ParsePolicy(s string) (Policy, error) { return memctrl.ParsePolicy(s) }

// XavierWithPolicy returns the virtual Xavier with a different memory
// scheduling policy — used to study how the contention phenomenology
// depends on fairness control (§2.3).
func XavierWithPolicy(p Policy) *Platform {
	x := soc.VirtualXavier()
	x.Policy = p
	return x
}

// CMP16 returns the paper's 16-core memory-controller study platform
// (Table 1) under the given policy.
func CMP16(p Policy) *Platform { return soc.CMP16(p) }
