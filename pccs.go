// Package pccs is a from-scratch reproduction of "PCCS: Processor-Centric
// Contention-aware Slowdown Model for Heterogeneous System-on-Chips"
// (Xu, Belviranli, Shen, Vetter — MICRO 2021).
//
// It provides, as one library:
//
//   - The three-region interference-conscious slowdown model (§3): given a
//     kernel's standalone bandwidth demand x on a processing unit and the
//     total external bandwidth demand y of co-located kernels, predict the
//     achieved relative speed of the kernel.
//   - The processor-centric model construction methodology (§3.2): sweep
//     controllable calibrator kernels against an external-demand ladder and
//     extract the model parameters with the paper's five-step analysis —
//     no co-run measurements of real application combinations needed.
//   - Linear bandwidth scaling (§3.3) to retarget a constructed model to
//     incremental memory-subsystem changes.
//   - The Gables baseline (Hill & Reddi, HPCA 2019) the paper compares
//     against.
//   - Virtual SoC platforms (a Jetson-AGX-Xavier-like and a
//     Snapdragon-855-like heterogeneous SoC simulated down to DRAM banks,
//     row buffers, and fairness-aware memory scheduling) that stand in for
//     the paper's silicon, plus the benchmark surrogates used to validate
//     the model.
//   - Design-space exploration (§3.4/§4.3): pick PU frequencies under
//     co-run slowdown budgets.
//   - A contention-aware co-run scheduler (§3.4's scheduling use case):
//     search PU assignments and co-run groupings for a batch of pending
//     workloads with the slowdown model as the inner-loop cost, with
//     worst-case contention bounds and simulator-replay validation.
//
// # Quick start
//
//	platform := pccs.Xavier()
//	models, _ := pccs.LoadModels("models/pccs-models.json")
//	gpu, _ := models.Get(platform.Name, "GPU")
//	rs := gpu.Predict(88 /* GB/s demand */, 40 /* GB/s external */)
//	fmt.Printf("streamcluster keeps %.1f%% of its standalone speed\n", rs)
//
// See the runnable programs under examples/ for complete workflows.
package pccs

import (
	"github.com/processorcentricmodel/pccs/internal/core"
	"github.com/processorcentricmodel/pccs/internal/gables"
	"github.com/processorcentricmodel/pccs/internal/platform"
	"github.com/processorcentricmodel/pccs/internal/soc"
)

// Params is a constructed PCCS model for one processing unit (Table 4).
type Params = core.Params

// Region classifies kernels by bandwidth demand (Eq. 1).
type Region = core.Region

// Contention regions of the three-region model.
const (
	Minor     = core.Minor
	Normal    = core.Normal
	Intensive = core.Intensive
)

// Phase is one execution phase of a multi-phase program (§3.2).
type Phase = core.Phase

// AverageDemand collapses phases to a time-weighted average demand — the
// naive single-number profile the paper shows to be inadequate (Fig. 13a).
func AverageDemand(phases []Phase) float64 { return core.AverageDemand(phases) }

// Gables is the baseline proportional-share contention model.
type Gables = gables.Model

// NewGables builds the Gables baseline for an SoC peak bandwidth in GB/s.
func NewGables(peakGBps float64) (Gables, error) { return gables.New(peakGBps) }

// Platform is a simulated heterogeneous shared-memory SoC.
type Platform = soc.Platform

// Backend is the simulation-substrate seam: anything that can validate
// itself, clone, report its PU topology and peak bandwidth, and run a
// kernel mix under contention. *Platform satisfies it, as do the extended
// families (chiplet, multi-core NPU, PIM) behind PlatformByName.
type Backend = soc.Backend

// PU describes one processing unit of a platform.
type PU = soc.PU

// Kernel describes work placed on one PU: name, standalone bandwidth
// demand, and optional locality/MLP overrides.
type Kernel = soc.Kernel

// Placement maps PU indices to kernels for a co-run.
type Placement = soc.Placement

// RunConfig controls simulation length.
type RunConfig = soc.RunConfig

// PUResult is a per-PU measurement from a simulation run.
type PUResult = soc.PUResult

// Xavier returns the virtual NVIDIA Jetson AGX Xavier: CPU + GPU + DLA over
// a 137 GB/s LPDDR4x memory system (PU indices 0, 1, 2).
func Xavier() *Platform { return soc.VirtualXavier() }

// Snapdragon returns the virtual Qualcomm Snapdragon 855: CPU + GPU over a
// 34 GB/s LPDDR4x memory system (PU indices 0, 1).
func Snapdragon() *Platform { return soc.VirtualSnapdragon() }

// PlatformNames lists every registered platform backend, sorted — the
// names PlatformByName, the CLIs' -platform flags, and the /v1/* request
// "platform" field accept.
func PlatformNames() []string { return platform.Names() }

// PlatformByName builds a fresh backend for any registered platform: the
// virtual SoCs plus the extended chiplet / multi-core NPU / PIM families.
func PlatformByName(name string) (Backend, error) { return platform.Get(name) }

// ExternalPressure builds a synthetic pure-bandwidth kernel, the
// "controllable memory traffic generator" of the methodology.
func ExternalPressure(demandGBps float64) Kernel { return soc.ExternalPressure(demandGBps) }

// DefaultRunConfig is the standard measurement window.
func DefaultRunConfig() RunConfig { return soc.DefaultRunConfig() }

// QuickRunConfig is a short window for tests and demos.
func QuickRunConfig() RunConfig { return soc.QuickRunConfig() }
