module github.com/processorcentricmodel/pccs

go 1.22
